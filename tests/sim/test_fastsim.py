"""Cross-engine equivalence: the compiled engine vs the reference.

The contract (see ``docs/architecture.md``, "Simulation engines") is
bit-identity, not approximation: for every design point the compiled
engine either produces exactly the reference metrics or transparently
falls back to the reference engine.  These tests pin that contract on
the canonical bench cases, on hypothesis-generated small specs across
all three router kinds, on the pure-Python fallback path (native kernel
disabled), and — since fault schedules now compile too — on every fault
class (dead links, dead routers, transient drops, mixed), on random
fault schedules, and on watchdog deadlock snapshots.
"""

import dataclasses
import warnings

import pytest
from hypothesis import given
from hypothesis import strategies as st

from property.settings import tiered_settings

from repro.bench import CASES, _case_spec
from repro.core.params import NetworkConfig
from repro.core.registry import ENGINES
from repro.core.spec import NetworkSpec, build_run
from repro.errors import DeadlockError
from repro.sim import _ckernel, fastsim
from repro.sim.faults import FaultSchedule
from repro.sim.simulator import run_synthetic
from repro.sim.watchdog import WatchdogConfig


def fingerprint(result):
    """Every metric of a run, excluding provenance (``engine``)."""
    fields = dataclasses.asdict(result)
    fields.pop("metrics")
    fields.pop("engine")
    measured = result.metrics.measured
    return (
        fields,
        measured.count,
        measured.total,
        measured.total_sq,
        measured.min,
        measured.max,
        tuple(result.metrics.hop_counts),
        result.metrics.delivered_total,
        result.metrics.injected_total,
        result.metrics.dropped_total,
        result.metrics.dropped_measured,
    )


def assert_engines_identical(spec):
    reference = build_run(spec.replace(engine="reference"))
    compiled = build_run(spec.replace(engine="compiled"))
    assert compiled.engine == "compiled", (
        f"{spec.topology} unexpectedly fell back to "
        f"{compiled.engine!r}"
    )
    assert fingerprint(reference) == fingerprint(compiled)
    return reference, compiled


class TestEngineRegistry:
    def test_both_engines_registered(self):
        assert "reference" in ENGINES
        assert "compiled" in ENGINES

    def test_unknown_engine_fails_with_menu(self):
        from repro.errors import ConfigError

        spec = NetworkSpec.for_network(
            "mesh", 4, 4, rate=0.1, warmup=10, measure=20,
            drain_limit=100, engine="warp",
        )
        with pytest.raises(ConfigError, match="known simulation engine"):
            build_run(spec)


class TestBenchCaseEquivalence:
    """Bit-identical fingerprints on the three canonical bench cases."""

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_bench_case_fingerprint(self, name):
        assert_engines_identical(_case_spec(name))


class TestFallbacks:
    def test_pure_python_path_matches_native_kernel(self, monkeypatch):
        """The scalar step loops are the kernel's executable spec."""
        spec = NetworkSpec.for_network(
            "ruche2-depop", 8, 8, half=True, rate=0.15,
            warmup=50, measure=100, drain_limit=300,
        )
        with_kernel = build_run(spec.replace(engine="compiled"))
        monkeypatch.setattr(fastsim._ckernel, "get_kernel", lambda: None)
        fastsim.clear_compile_caches()
        without_kernel = build_run(spec.replace(engine="compiled"))
        fastsim.clear_compile_caches()
        assert with_kernel.engine == without_kernel.engine == "compiled"
        assert fingerprint(with_kernel) == fingerprint(without_kernel)

    def test_audit_tripwires_fall_back_to_reference(self):
        """``audit_every`` hooks are the one remaining fault-adjacent
        feature the compiled engine does not lower."""
        config = NetworkConfig.from_name("mesh", 4, 4)
        result = run_synthetic(
            config, "uniform_random", 0.05,
            warmup=20, measure=50, drain_limit=200, seed=3,
            audit_every=25, engine="compiled",
        )
        assert result.engine == "reference"

    def test_failed_kernel_compile_cached_with_single_warning(
        self, monkeypatch
    ):
        """A poisoned ``CC`` costs one compiler invocation and one
        warning per process; later calls hit the cached negative."""
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        monkeypatch.delenv("REPRO_NO_CKERNEL", raising=False)
        saved = (_ckernel._tried, _ckernel._lib)
        _ckernel._tried, _ckernel._lib = False, None
        try:
            with pytest.warns(
                RuntimeWarning, match="native step kernel unavailable"
            ) as caught:
                assert _ckernel.get_kernel() is None
            kernel_warnings = [
                w for w in caught
                if "native step kernel unavailable" in str(w.message)
            ]
            assert len(kernel_warnings) == 1
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert _ckernel.get_kernel() is None
        finally:
            _ckernel._tried, _ckernel._lib = saved


#: One seeded recipe per fault class, all verified to complete (and
#: drain) on an 8x8 mesh at the rates used below.
_FAULT_RECIPES = {
    "dead-links": lambda cfg: FaultSchedule.random_dead_links(
        cfg, 4, seed=3, degraded_model=True
    ),
    "dead-routers": lambda cfg: FaultSchedule.random_mixed(
        cfg, routers=2, seed=5, degraded_model=True
    ),
    "transient": lambda cfg: FaultSchedule.random_mixed(
        cfg, transient=3, drop_prob=0.05, seed=7
    ),
    "mixed": lambda cfg: FaultSchedule.random_mixed(
        cfg, links=2, routers=1, transient=2, drop_prob=0.05,
        seed=9, degraded_model=True,
    ),
}


class TestFaultEquivalence:
    """Fault schedules run compiled, bit-identical to the reference."""

    @pytest.mark.parametrize("kind", sorted(_FAULT_RECIPES))
    def test_fault_classes_stay_compiled_and_identical(self, kind):
        config = NetworkConfig.from_name("mesh", 8, 8)
        schedule = _FAULT_RECIPES[kind](config)
        kwargs = dict(
            warmup=200, measure=400, drain_limit=2000, seed=1,
            faults=schedule,
        )
        compiled = run_synthetic(
            config, "uniform_random", 0.15, engine="compiled", **kwargs
        )
        reference = run_synthetic(
            config, "uniform_random", 0.15, engine="reference", **kwargs
        )
        assert compiled.engine == "compiled"
        assert fingerprint(compiled) == fingerprint(reference)

    @pytest.mark.parametrize("fbfc", [False, True], ids=["vc", "fbfc"])
    def test_transient_drops_on_torus_stay_compiled(self, fbfc):
        """Transient faults do not reroute, so they lower even on the
        VC / FBFC torus baselines."""
        config = NetworkConfig.from_name("torus", 8, 4, fbfc=fbfc)
        schedule = FaultSchedule.random_transient(
            config, 3, seed=2, drop_prob=0.05
        )
        kwargs = dict(
            warmup=100, measure=200, drain_limit=800, seed=1,
            faults=schedule,
        )
        compiled = run_synthetic(
            config, "uniform_random", 0.1, engine="compiled", **kwargs
        )
        reference = run_synthetic(
            config, "uniform_random", 0.1, engine="reference", **kwargs
        )
        assert compiled.engine == "compiled"
        assert fingerprint(compiled) == fingerprint(reference)

    def test_vc_rerouting_rejected_identically(self):
        """Permanent faults on the VC torus are rejected by both
        engines with the same error (the compiled engine defers to the
        reference rather than invent its own behavior)."""
        config = NetworkConfig.from_name("torus", 4, 4)
        schedule = FaultSchedule.random_dead_links(config, 1, seed=0)
        messages = {}
        for engine in ("reference", "compiled"):
            with pytest.raises(Exception) as excinfo:
                run_synthetic(
                    config, "uniform_random", 0.05,
                    warmup=10, measure=20, drain_limit=100, seed=1,
                    faults=schedule, engine=engine,
                )
            messages[engine] = (type(excinfo.value), str(excinfo.value))
        assert messages["reference"] == messages["compiled"]

    def test_drop_accounting_balances_at_drain(self):
        """Injected = delivered + dropped + in-flight; a drained run
        has resolved every measured packet one way or the other."""
        config = NetworkConfig.from_name("mesh", 8, 8)
        schedule = FaultSchedule.random_transient(
            config, 4, seed=11, drop_prob=0.2
        )
        result = run_synthetic(
            config, "uniform_random", 0.1,
            warmup=100, measure=300, drain_limit=2000, seed=1,
            faults=schedule, engine="compiled",
        )
        assert result.engine == "compiled"
        assert result.drained
        metrics = result.metrics
        assert metrics.dropped_measured > 0
        assert result.injected_measured == (
            result.delivered_measured + metrics.dropped_measured
        )
        in_flight = (
            metrics.injected_total
            - metrics.delivered_total
            - metrics.dropped_total
        )
        assert in_flight >= 0

    def test_watchdog_snapshot_parity(self):
        """When the watchdog trips, the compiled engine reconstructs a
        ``DeadlockSnapshot`` field-for-field identical to the one the
        reference engine captured live."""
        config = NetworkConfig.from_name("mesh", 8, 8)
        schedule = FaultSchedule.random_dead_links(
            config, 6, seed=0, degraded_model=True
        )
        kwargs = dict(
            warmup=2000, measure=2000, drain_limit=2000, seed=1,
            faults=schedule, watchdog=WatchdogConfig(stall_window=300),
        )
        errors = {}
        for engine in ("reference", "compiled"):
            with pytest.raises(DeadlockError) as excinfo:
                run_synthetic(
                    config, "uniform_random", 0.8, engine=engine,
                    **kwargs,
                )
            errors[engine] = excinfo.value
        ref, comp = errors["reference"], errors["compiled"]
        assert str(ref) == str(comp)
        assert ref.snapshot is not None and comp.snapshot is not None
        assert comp.snapshot.kind == "stall"
        for field in (
            "kind", "cycle", "occupancy", "window",
            "stalled_routers", "audit_problems",
        ):
            assert getattr(ref.snapshot, field) == getattr(
                comp.snapshot, field
            ), field


#: (name, config options, permanent faults legal).  Permanent faults
#: require the wormhole rerouting path; the torus rows are clamped to
#: transient-only below.
_FAULT_DESIGNS = (
    ("mesh", {}, True),
    ("multimesh", {}, True),
    ("ruche2-depop", {}, True),
    ("torus", {}, False),
    ("torus", {"fbfc": True}, False),
)


class TestFaultProperty:
    @tiered_settings(10, deadline=None)
    @given(
        design=st.sampled_from(_FAULT_DESIGNS),
        links=st.integers(0, 3),
        routers=st.integers(0, 1),
        transient=st.integers(0, 3),
        drop_prob=st.sampled_from((0.0, 0.02, 0.1)),
        fault_seed=st.integers(0, 3),
        seed=st.integers(0, 2),
    )
    def test_random_fault_schedules_identical(
        self, design, links, routers, transient, drop_prob,
        fault_seed, seed,
    ):
        name, options, reroutable = design
        if not reroutable:
            links = routers = 0
        config = NetworkConfig.from_name(name, 8, 4, **options)
        schedule = FaultSchedule.random_mixed(
            config, links=links, routers=routers, transient=transient,
            drop_prob=drop_prob, seed=fault_seed,
            degraded_model=reroutable and bool(links or routers),
        )
        results = {}
        for engine in ("reference", "compiled"):
            results[engine] = run_synthetic(
                config, "uniform_random", 0.1,
                warmup=50, measure=150, drain_limit=600, seed=seed,
                faults=schedule, engine=engine,
            )
        assert results["compiled"].engine == "compiled"
        assert fingerprint(results["compiled"]) == fingerprint(
            results["reference"]
        )


#: (config name, max width, max height) combos legal at small sizes;
#: covers the wormhole, FBFC, and VC (dateline torus) router kinds.
_DESIGNS = (
    ("mesh", {}),
    ("multimesh", {}),
    ("torus", {}),
    ("torus-fbfc", {}),
    ("half-torus", {}),
    ("ruche2-depop", {}),
    ("ruche2-pop", {}),
    ("ruche2-depop", {"half": True}),
)


class TestPropertyEquivalence:
    @tiered_settings(12, deadline=None)
    @given(
        design=st.sampled_from(_DESIGNS),
        width=st.integers(4, 8),
        height=st.integers(4, 8),
        rate=st.sampled_from((0.05, 0.15, 0.3)),
        seed=st.integers(0, 3),
    )
    def test_random_small_specs_identical(
        self, design, width, height, rate, seed
    ):
        name, options = design
        spec = NetworkSpec.for_network(
            name, width, height, rate=rate, seed=seed,
            warmup=20, measure=60, drain_limit=200, **options,
        )
        reference, compiled = assert_engines_identical(spec)
        # The assertion above is full-fingerprint; spell out the
        # headline quantities the contract names.
        assert compiled.injected_measured == reference.injected_measured
        assert compiled.delivered_measured == reference.delivered_measured
        assert compiled.avg_latency == reference.avg_latency

    def test_p99_latency_identical_from_samples(self):
        spec = NetworkSpec.for_network(
            "torus", 8, 4, rate=0.2, warmup=30, measure=80,
            drain_limit=250, seed=11,
        )
        results = {
            engine: run_synthetic(
                spec, engine=engine, keep_samples=True
            )
            for engine in ("reference", "compiled")
        }
        assert results["compiled"].engine == "compiled"

        def p99(result):
            samples = sorted(result.metrics.measured._samples)
            assert samples
            return samples[(len(samples) * 99) // 100]

        assert p99(results["reference"]) == p99(results["compiled"])

    def test_trackers_identical(self):
        spec = NetworkSpec.for_network(
            "ruche2-depop", 8, 8, rate=0.15, warmup=30, measure=80,
            drain_limit=250, seed=7,
        )
        kwargs = dict(track_per_source=True, track_links=True)
        reference = run_synthetic(spec, engine="reference", **kwargs)
        compiled = run_synthetic(spec, engine="compiled", **kwargs)
        assert compiled.engine == "compiled"
        assert sorted(reference.metrics.link_counts.items()) == sorted(
            compiled.metrics.link_counts.items()
        )
        assert set(reference.metrics.per_source) == set(
            compiled.metrics.per_source
        )
        for key, ref_tracker in reference.metrics.per_source.items():
            comp_tracker = compiled.metrics.per_source[key]
            assert (
                ref_tracker.count,
                ref_tracker.total,
                ref_tracker.total_sq,
                ref_tracker.min,
                ref_tracker.max,
            ) == (
                comp_tracker.count,
                comp_tracker.total,
                comp_tracker.total_sq,
                comp_tracker.min,
                comp_tracker.max,
            )
