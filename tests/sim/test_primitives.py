"""Unit and property tests for FIFOs, arbiters, and the wavefront allocator."""

import pytest
from hypothesis import given, strategies as st

from property.settings import tiered_settings

from repro.sim.allocator import WavefrontAllocator
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.fifo import Fifo


class TestFifo:
    def test_fills_to_depth(self):
        f = Fifo(2)
        f.append(1)
        f.append(2)
        assert f.is_full and len(f) == 2

    def test_rejects_overflow(self):
        f = Fifo(2)
        f.append(1)
        f.append(2)
        with pytest.raises(OverflowError):
            f.append(3)

    def test_fifo_order(self):
        f = Fifo(3)
        for v in (1, 2, 3):
            f.append(v)
        assert [f.popleft() for _ in range(3)] == [1, 2, 3]

    def test_head_peeks_without_removing(self):
        f = Fifo(2)
        assert f.head is None
        f.append(42)
        assert f.head == 42 and len(f) == 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            Fifo(0)

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=60))
    def test_occupancy_never_exceeds_depth(self, ops):
        f = Fifo(2)
        for op in ops:
            if op == "push" and not f.is_full:
                f.append(0)
            elif op == "pop" and f:
                f.popleft()
            assert 0 <= len(f) <= 2


class TestRoundRobinArbiter:
    def test_picks_only_requester(self):
        arb = RoundRobinArbiter(4)
        assert arb.pick([False, False, True, False]) == 2

    def test_no_request_returns_none(self):
        assert RoundRobinArbiter(3).pick([False] * 3) is None

    def test_granted_requester_gets_lowest_priority(self):
        arb = RoundRobinArbiter(3)
        assert arb.pick([True, True, True]) == 0
        arb.grant(0)
        assert arb.pick([True, True, True]) == 1
        arb.grant(1)
        assert arb.pick([True, True, True]) == 2

    def test_priority_skips_idle_requesters(self):
        arb = RoundRobinArbiter(4)
        arb.grant(1)  # priority now at 2
        assert arb.pick([True, False, False, False]) == 0

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(2).pick([True])

    @given(
        st.integers(2, 8),
        st.lists(st.lists(st.booleans(), min_size=8, max_size=8), min_size=1, max_size=40),
    )
    def test_long_run_fairness(self, n, rounds):
        """Under persistent requests, grants are balanced within one."""
        arb = RoundRobinArbiter(n)
        grants = [0] * n
        for _ in range(n * 10):
            winner = arb.pick([True] * n)
            arb.grant(winner)
            grants[winner] += 1
        assert max(grants) - min(grants) <= 1


class TestWavefrontAllocator:
    def test_grants_are_a_matching(self):
        alloc = WavefrontAllocator(3, 3)
        reqs = [[True, True, False], [True, False, False], [False, True, True]]
        grants = alloc.allocate(reqs)
        ins = [i for i, _ in grants]
        outs = [o for _, o in grants]
        assert len(set(ins)) == len(ins)
        assert len(set(outs)) == len(outs)
        for i, o in grants:
            assert reqs[i][o]

    def test_matching_is_maximal(self):
        alloc = WavefrontAllocator(4, 4)
        reqs = [[False] * 4 for _ in range(4)]
        reqs[0][0] = reqs[1][1] = reqs[2][2] = reqs[3][3] = True
        assert len(alloc.allocate(reqs)) == 4

    def test_priority_rotates(self):
        alloc = WavefrontAllocator(2, 2)
        # Two inputs both want output 0; the winner must alternate.
        reqs = [[True, False], [True, False]]
        winners = {alloc.allocate(reqs)[0][0] for _ in range(4)}
        assert winners == {0, 1}

    def test_empty_requests(self):
        alloc = WavefrontAllocator(5, 5)
        assert alloc.allocate([[False] * 5 for _ in range(5)]) == []

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            WavefrontAllocator(2, 2).allocate([[True, True]])
        with pytest.raises(ValueError):
            WavefrontAllocator(0, 3)

    @given(
        st.lists(
            st.lists(st.booleans(), min_size=5, max_size=5),
            min_size=5,
            max_size=5,
        )
    )
    @tiered_settings(200)
    def test_maximality_property(self, reqs):
        """No grantable request is left on the table (maximal matching)."""
        alloc = WavefrontAllocator(5, 5)
        grants = alloc.allocate(reqs)
        ins = {i for i, _ in grants}
        outs = {o for _, o in grants}
        for i in range(5):
            for o in range(5):
                if reqs[i][o] and i not in ins and o not in outs:
                    pytest.fail(f"request ({i},{o}) was grantable but idle")

    @given(
        st.lists(
            st.lists(st.booleans(), min_size=5, max_size=5),
            min_size=5,
            max_size=5,
        )
    )
    @tiered_settings(200)
    def test_grants_respect_requests_and_uniqueness(self, reqs):
        alloc = WavefrontAllocator(5, 5)
        grants = alloc.allocate(reqs)
        assert len({i for i, _ in grants}) == len(grants)
        assert len({o for _, o in grants}) == len(grants)
        assert all(reqs[i][o] for i, o in grants)
