"""Network-level tests: delivery, latency semantics, flow control,
deadlock freedom, edge-memory endpoints."""

import pytest
from hypothesis import given, strategies as st

from property.settings import tiered_settings

from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig
from repro.core.routing import make_routing
from repro.sim.network import Network
from repro.sim.rng import derive_rng

ALL_NAMES = [
    "mesh", "torus", "half-torus", "multimesh", "ruche1",
    "ruche2-depop", "ruche2-pop", "ruche3-depop", "ruche3-pop",
]


def net_for(name, w=8, h=8, **kw):
    half = name == "half-torus"
    return Network(NetworkConfig.from_name(name, w, h, half=half, **kw))


class TestSinglePacket:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_latency_equals_hop_count_at_zero_load(self, name):
        net = net_for(name)
        src, dest = Coord(1, 2), Coord(6, 5)
        expected = make_routing(net.config).hop_count(src, dest)
        net.inject(src, dest, measured=True)
        assert net.drain(200)
        stats = net.metrics.measured
        assert stats.count == 1
        assert stats.mean == expected

    def test_packet_hops_recorded(self):
        net = net_for("mesh")
        pkt = net.inject(Coord(0, 0), Coord(3, 0), measured=True)
        net.drain(100)
        assert pkt.hops == 3

    def test_self_send_delivers_via_p_loopback(self):
        net = net_for("mesh")
        net.inject(Coord(2, 2), Coord(2, 2), measured=True)
        assert net.drain(50)
        assert net.metrics.measured.count == 1


class TestConservation:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_every_injected_packet_is_delivered_exactly_once(self, name):
        net = net_for(name)
        rng = derive_rng(3, name)
        nodes = net.topology.nodes
        n_pkts = 300
        for _ in range(n_pkts):
            src = nodes[rng.randrange(len(nodes))]
            dest = nodes[rng.randrange(len(nodes))]
            net.inject(src, dest, measured=True)
        assert net.drain(3000)
        assert net.metrics.measured.count == n_pkts
        assert net.metrics.delivered_total == n_pkts
        assert net.occupancy == 0

    @given(st.integers(0, 2**32 - 1))
    @tiered_settings(12, deadline=None)
    def test_random_burst_conservation_property(self, seed):
        rng = derive_rng(seed, "burst")
        name = ALL_NAMES[seed % len(ALL_NAMES)]
        net = net_for(name, 6, 6)
        nodes = net.topology.nodes
        count = rng.randrange(1, 120)
        for _ in range(count):
            net.inject(
                nodes[rng.randrange(len(nodes))],
                nodes[rng.randrange(len(nodes))],
                measured=True,
            )
        assert net.drain(4000)
        assert net.metrics.measured.count == count


class TestFlowControl:
    def test_fifo_depth_never_exceeded(self):
        """Saturating a single column must never overflow any FIFO
        (Fifo.append raises if flow control breaks)."""
        net = net_for("mesh", 6, 6)
        for t in range(200):
            for y in range(6):
                net.inject(Coord(0, y), Coord(5, y))
            net.step()
        # If we got here, no OverflowError fired.
        assert net.occupancy > 0
        assert net.drain(5000)

    def test_source_queue_len_visible(self):
        net = net_for("mesh", 4, 4)
        for _ in range(5):
            net.inject(Coord(0, 0), Coord(3, 3))
        assert net.source_queue_len(Coord(0, 0)) == 5
        net.step()
        assert net.source_queue_len(Coord(0, 0)) == 4


class TestTorusDeadlockFreedom:
    """The dateline VC scheme must survive adversarial saturation."""

    @pytest.mark.parametrize("pattern_shift", [1, 3, 4])
    def test_ring_saturation_drains(self, pattern_shift):
        net = net_for("torus", 8, 8)
        rng = derive_rng(11, "ddl")
        for t in range(300):
            for node in net.topology.nodes:
                if rng.random() < 0.5:
                    dest = Coord(
                        (node.x + pattern_shift) % 8,
                        (node.y + pattern_shift) % 8,
                    )
                    if dest != node:
                        net.inject(node, dest)
            net.step()
        assert net.drain(20000)

    def test_half_torus_tornado_drains(self):
        net = net_for("half-torus", 16, 8)
        for t in range(200):
            for node in net.topology.nodes:
                dest = Coord((node.x + 7) % 16, node.y)
                net.inject(node, dest)
            net.step()
        assert net.drain(60000)


class TestEdgeMemory:
    def test_packets_reach_memory_sinks(self):
        net = net_for("mesh", 8, 4, edge_memory=True)
        net.inject(Coord(3, 2), Coord(6, -1), measured=True)
        net.inject(Coord(3, 2), Coord(0, 4), measured=True)
        assert net.drain(200)
        assert net.metrics.measured.count == 2

    def test_memory_can_inject_responses_on_yx_network(self):
        """Responses travel Y-X (Section 4): the X-Y crossbar has no
        N-input -> E-output connection, so memory-sourced traffic rides a
        second network with the swapped dimension order."""
        from repro.core.params import DorOrder

        net = net_for("mesh", 8, 4, edge_memory=True, dor_order=DorOrder.YX)
        ok = net.try_inject_from_memory(Coord(2, -1), Coord(5, 3), measured=True)
        assert ok
        assert net.drain(200)
        assert net.metrics.measured.count == 1

    def test_memory_injection_backpressure(self):
        """When the edge FIFO is full, memory injection must fail."""
        cfg = NetworkConfig.from_name("mesh", 4, 4, edge_memory=True)
        net = Network(cfg)
        mem = Coord(1, -1)
        accepted = 0
        for _ in range(10):
            if net.try_inject_from_memory(mem, Coord(1, 3)):
                accepted += 1
        assert accepted == cfg.fifo_depth  # no steps taken: FIFO capacity
        assert net.memory_entry_space(mem) == 0
        net.step()
        assert net.memory_entry_space(mem) > 0

    def test_vertical_ruche_rejects_edge_memory(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            NetworkConfig.from_name("ruche2-depop", 16, 8, edge_memory=True)
        with pytest.raises(ConfigError):
            NetworkConfig.from_name("multimesh", 16, 8, edge_memory=True)

    def test_half_ruche_memory_traffic(self):
        net = Network(
            NetworkConfig.from_name(
                "ruche3-depop", 16, 8, half=True, edge_memory=True
            )
        )
        rng = derive_rng(5, "mem")
        for _ in range(200):
            src = Coord(rng.randrange(16), rng.randrange(8))
            dest = Coord(rng.randrange(16), -1 if rng.random() < 0.5 else 8)
            net.inject(src, dest, measured=True)
        assert net.drain(4000)
        assert net.metrics.measured.count == 200


def _half(name):
    return name == "half-torus"


class TestHopAccounting:
    def test_direction_counters_match_packet_hops(self):
        net = net_for("ruche2-pop")
        rng = derive_rng(9, "hops")
        nodes = net.topology.nodes
        pkts = []
        for _ in range(150):
            pkts.append(
                net.inject(
                    nodes[rng.randrange(len(nodes))],
                    nodes[rng.randrange(len(nodes))],
                    measured=True,
                )
            )
        assert net.drain(4000)
        assert sum(net.metrics.hop_counts) == sum(p.hops for p in pkts)

    def test_ruche_directions_used(self):
        net = net_for("ruche3-pop")
        net.inject(Coord(0, 0), Coord(7, 7))
        net.drain(100)
        assert net.metrics.hop_counts[int(Direction.RE)] > 0
        assert net.metrics.hop_counts[int(Direction.RS)] > 0
