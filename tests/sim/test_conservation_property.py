"""Broad conservation property: every packet injected into any supported
configuration is delivered exactly once, across the full config space
(topologies × flow control × channel latency × FIFO depth)."""

from hypothesis import given, strategies as st

from property.settings import tiered_settings

from repro.core.params import NetworkConfig
from repro.sim.network import Network
from repro.sim.rng import derive_rng
from repro.sim.validate import assert_healthy

NAMES = [
    "mesh", "torus", "torus-fbfc", "half-torus", "multimesh",
    "ruche1", "ruche2-depop", "ruche2-pop", "ruche3-depop", "ruche3-pop",
]


@st.composite
def any_config(draw):
    name = draw(st.sampled_from(NAMES))
    w = draw(st.integers(5, 9))
    h = draw(st.integers(5, 9))
    latency = draw(st.sampled_from([1, 1, 2]))
    depth = draw(st.sampled_from([2, 4])) if latency == 1 else 4
    half = name == "half-torus"
    return NetworkConfig.from_name(
        name, w, h, half=half, channel_latency=latency, fifo_depth=depth
    )


@given(any_config(), st.integers(0, 2**31 - 1))
@tiered_settings(25, deadline=None)
def test_universal_conservation(cfg, seed):
    net = Network(cfg)
    rng = derive_rng(seed, "universal")
    nodes = net.topology.nodes
    count = rng.randrange(1, 150)
    for _ in range(count):
        src = nodes[rng.randrange(len(nodes))]
        dest = nodes[rng.randrange(len(nodes))]
        net.inject(src, dest, measured=True)
        if rng.random() < 0.3:
            net.step()
    assert net.drain(20000), f"{cfg.name} failed to drain"
    assert net.metrics.measured.count == count
    assert net.occupancy == 0
    assert_healthy(net)


@given(st.integers(0, 2**31 - 1))
@tiered_settings(10, deadline=None)
def test_vc_network_healthy_mid_flight(seed):
    """Invariants hold at arbitrary mid-simulation points, not only at
    quiescence."""
    cfg = NetworkConfig.from_name("torus", 6, 6)
    net = Network(cfg)
    rng = derive_rng(seed, "midflight")
    nodes = net.topology.nodes
    for t in range(60):
        for _ in range(4):
            net.inject(
                nodes[rng.randrange(36)],
                nodes[rng.randrange(36)],
            )
        net.step()
        if t % 13 == 0:
            assert_healthy(net)


def test_self_messages_on_every_topology():
    for name in NAMES:
        half = name == "half-torus"
        net = Network(NetworkConfig.from_name(name, 6, 6, half=half))
        for node in net.topology.nodes:
            net.inject(node, node, measured=True)
        assert net.drain(500)
        assert net.metrics.measured.count == 36
