"""Tests for the network invariant auditor."""

import pytest

from repro.core.coords import Coord
from repro.core.params import NetworkConfig
from repro.sim.network import Network
from repro.sim.rng import derive_rng
from repro.sim.validate import assert_healthy, audit_network, is_vc_network


def loaded_network(name="mesh", steps=120, **kw):
    net = Network(NetworkConfig.from_name(name, 8, 8, **kw))
    rng = derive_rng(4, name)
    nodes = net.topology.nodes
    for _ in range(steps):
        for _ in range(8):
            net.inject(nodes[rng.randrange(64)], nodes[rng.randrange(64)])
        net.step()
    return net


class TestAudit:
    @pytest.mark.parametrize(
        "name, kw",
        [
            ("mesh", {}),
            ("torus", {}),
            ("torus-fbfc", {}),
            ("ruche2-depop", {}),
            ("ruche3-pop", {"channel_latency": 2, "fifo_depth": 4}),
            ("torus", {"channel_latency": 2, "fifo_depth": 4}),
        ],
    )
    def test_healthy_under_load(self, name, kw):
        net = loaded_network(name, **kw)
        assert audit_network(net) == []
        assert_healthy(net)

    def test_healthy_after_drain(self):
        net = loaded_network("ruche2-pop")
        net.drain(5000)
        assert_healthy(net)
        assert net.occupancy == 0

    def test_detects_corrupted_occupancy(self):
        net = loaded_network("mesh", steps=20)
        router = net.routers[Coord(3, 3)]
        router.occ += 1
        problems = audit_network(net)
        assert any("occ" in p for p in problems)
        with pytest.raises(AssertionError):
            assert_healthy(net)

    def test_detects_global_occupancy_mismatch(self):
        net = loaded_network("mesh", steps=20)
        net.occupancy += 5
        assert any("occupancy" in p for p in audit_network(net))

    def test_detects_unwired_route(self):
        net = Network(NetworkConfig.from_name("mesh", 4, 4))
        pkt = net.inject(Coord(0, 0), Coord(3, 0))
        pkt.out_dir = 7  # RN: not wired on a mesh
        assert any("unwired" in p for p in audit_network(net))

    def test_vc_network_detection(self):
        assert is_vc_network(Network(NetworkConfig.from_name("torus", 4, 4)))
        assert not is_vc_network(
            Network(NetworkConfig.from_name("torus-fbfc", 4, 4))
        )
