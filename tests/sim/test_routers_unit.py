"""Router-level unit tests: arbitration, flow control, VC mechanics,
exercised directly on hand-wired two-router rigs."""

from repro.core.connectivity import MESH_XY, connectivity_matrix
from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig
from repro.sim.metrics import RunMetrics
from repro.sim.packet import Packet
from repro.sim.router import (
    P_IDX,
    MetricsSink,
    Sink,
    VCRouter,
    WormholeRouter,
)

P, W, E, N, S = (int(Direction.P), int(Direction.W), int(Direction.E),
                 int(Direction.N), int(Direction.S))


def mesh_route(coord, in_dir, dest, subnet):
    from repro.core.routing import MeshDOR

    return MeshDOR(NetworkConfig.from_name("mesh", 8, 8)).route(
        coord, in_dir, dest, subnet
    )


class CountingSink(Sink):
    def __init__(self, ready=True):
        self.delivered = []
        self._ready = ready

    def ready(self):
        return self._ready

    def deliver(self, pkt, cycle):
        self.delivered.append((pkt, cycle))


def wire_pair():
    """Two mesh routers: a --E--> b, with sinks on every other output."""
    a = WormholeRouter(Coord(0, 0), 2, mesh_route, [E], MESH_XY)
    b = WormholeRouter(Coord(1, 0), 2, mesh_route, [W], MESH_XY)
    sink_a, sink_b = CountingSink(), CountingSink()
    a.out_target[E] = (b, W)
    a.out_target[P] = sink_a
    b.out_target[P] = sink_b
    a.finish_wiring()
    b.finish_wiring()
    return a, b, sink_a, sink_b


def packet(pid, src, dest):
    return Packet(pid, Coord(*src), Coord(*dest), 0)


class TestWormholeRouter:
    def test_forwards_toward_route(self):
        a, b, _sa, _sb = wire_pair()
        a.accept(packet(0, (0, 0), (1, 0)), P_IDX)
        moves = []
        a.arbitrate(moves)
        assert len(moves) == 1
        _, in_idx, _, out_idx, pkt = moves[0]
        assert in_idx == P_IDX and out_idx == E

    def test_blocks_on_full_downstream_fifo(self):
        a, b, _sa, _sb = wire_pair()
        b.in_q[W].append(packet(90, (0, 0), (5, 0)))
        b.in_q[W].append(packet(91, (0, 0), (5, 0)))
        a.accept(packet(0, (0, 0), (1, 0)), P_IDX)
        moves = []
        a.arbitrate(moves)
        assert moves == []

    def test_round_robin_alternates_inputs(self):
        """Two inputs streaming to one output share it fairly."""
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        r = WormholeRouter(
            Coord(1, 1), 2, mesh_route, [W, N], connectivity_matrix(cfg)
        )
        sink = CountingSink()
        for d in range(5):
            r.out_target[d] = None
        r.out_target[P] = sink
        r.finish_wiring()
        winners = []
        for t in range(8):
            # Keep both input FIFOs loaded with ejecting packets.
            while len(r.in_q[W]) < 2:
                r.accept(packet(100 + t, (0, 1), (1, 1)), W)
            while len(r.in_q[N]) < 2:
                r.accept(packet(200 + t, (1, 0), (1, 1)), N)
            moves = []
            r.arbitrate(moves)
            assert len(moves) == 1
            winners.append(moves[0][1])
            r.pop(moves[0][1], 0)
        assert winners.count(W) == 4
        assert winners.count(N) == 4

    def test_sink_backpressure(self):
        a, b, sa, _sb = wire_pair()
        sa._ready = False
        a.accept(packet(0, (5, 5), (0, 0)), E)  # wants P output... routed
        # Route at a for dest == own coord is P.
        moves = []
        a.arbitrate(moves)
        assert moves == []

    def test_connectivity_restricts_candidates(self):
        """An N input can never win the E output under X-Y DOR."""
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        r = WormholeRouter(
            Coord(1, 1), 2, mesh_route, [W, N], connectivity_matrix(cfg)
        )
        assert N not in r.candidates[E]
        assert W in r.candidates[E]

    def test_route_cache_reused(self):
        a, _b, _sa, _sb = wire_pair()
        a.accept(packet(0, (0, 0), (1, 0)), P_IDX)
        a.accept(packet(1, (0, 0), (1, 0)), P_IDX)
        assert len(a.route_cache) == 1


def torus_route_vc(coord, in_dir, in_vc, dest):
    from repro.core.routing import TorusDOR

    return TorusDOR(NetworkConfig.from_name("torus", 8, 8)).route_vc(
        coord, in_dir, in_vc, dest
    )


def wire_vc_pair():
    a = VCRouter(Coord(0, 0), 2, torus_route_vc, [E], 2)
    b = VCRouter(Coord(1, 0), 2, torus_route_vc, [W], 2)
    sink_a, sink_b = CountingSink(), CountingSink()
    a.out_target[E] = (b, W)
    a.out_target[P] = sink_a
    b.out_target[P] = sink_b
    return a, b, sink_a, sink_b


class TestVCRouter:
    def test_single_crossbar_port_per_input(self):
        """Both VCs of one input hold ready packets; at most one moves
        per cycle (the Figure 3c bandwidth halving)."""
        a, b, _sa, _sb = wire_vc_pair()
        # Load both VC lanes of a's E... inputs are W side; use input W
        # of router b with two ejecting packets on different VCs.
        pkt0 = packet(0, (0, 0), (1, 0))
        pkt1 = packet(1, (0, 0), (1, 0))
        b.accept(pkt0, W, 0)
        b.accept(pkt1, W, 1)
        moves = []
        b.arbitrate(moves)
        assert len(moves) == 1

    def test_vc_mux_round_robins_lanes(self):
        a, b, _sa, _sb = wire_vc_pair()
        lanes_granted = []
        for t in range(4):
            while len(b.in_q[W][0]) < 2:
                b.accept(packet(10 + t, (0, 0), (1, 0)), W, 0)
            while len(b.in_q[W][1]) < 2:
                b.accept(packet(20 + t, (0, 0), (1, 0)), W, 1)
            moves = []
            b.arbitrate(moves)
            assert len(moves) == 1
            lanes_granted.append(moves[0][2])
            b.pop(W, moves[0][2])
        assert lanes_granted.count(0) == 2
        assert lanes_granted.count(1) == 2

    def test_request_gated_on_downstream_credit(self):
        """Ready-then-valid: a head whose destination VC is full raises
        no request even if the switch is idle."""
        a, b, _sa, _sb = wire_vc_pair()
        pkt = packet(0, (0, 0), (2, 0))  # goes through b, stays on E
        a.accept(pkt, P_IDX, 0)
        target_vc = pkt.out_vc
        b.in_q[W][target_vc].append(packet(70, (0, 0), (3, 0)))
        b.in_q[W][target_vc].append(packet(71, (0, 0), (3, 0)))
        moves = []
        a.arbitrate(moves)
        assert moves == []
        # The other VC being full is irrelevant; freeing the target VC
        # unblocks the request.
        b.in_q[W][target_vc].popleft()
        moves = []
        a.arbitrate(moves)
        assert len(moves) == 1

    def test_injection_lane_is_single(self):
        a, _b, _sa, _sb = wire_vc_pair()
        assert len(a.in_q[P_IDX]) == 1

    def test_pop_returns_expected_packet(self):
        a, b, _sa, _sb = wire_vc_pair()
        pkt = packet(5, (0, 0), (1, 0))
        b.accept(pkt, W, 1)
        assert b.pop(W, 1) is pkt
        assert b.occ == 0


class TestMetricsSink:
    def test_records_into_metrics(self):
        metrics = RunMetrics()
        sink = MetricsSink(metrics)
        pkt = packet(0, (0, 0), (1, 0))
        pkt.measured = True
        pkt.inject_cycle = 3
        sink.deliver(pkt, 10)
        assert metrics.delivered_measured == 1
        assert metrics.measured.mean == 7
