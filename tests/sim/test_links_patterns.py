"""Tests for link-utilization tracking, new traffic patterns, multi-seed
statistics and the text plotting helpers."""

import pytest

from repro.analysis.plots import ascii_curve, link_heatmap
from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig
from repro.errors import ConfigError
from repro.sim.rng import derive_rng
from repro.sim.simulator import multi_seed_run, run_synthetic
from repro.sim.traffic import make_pattern


class TestLinkTracking:
    def run_tracked(self, name="mesh", pattern="uniform_random"):
        cfg = NetworkConfig.from_name(name, 8, 8)
        return run_synthetic(
            cfg, pattern, 0.15, warmup=150, measure=400,
            drain_limit=1500, track_links=True,
        )

    def test_counts_sum_to_hop_counts(self):
        r = self.run_tracked()
        per_dir = {}
        for (coord, out_idx), count in r.metrics.link_counts.items():
            per_dir[out_idx] = per_dir.get(out_idx, 0) + count
        for out_idx, total in per_dir.items():
            assert total == r.metrics.hop_counts[out_idx]

    def test_mesh_center_links_hotter_than_edges(self):
        """The bisection bottleneck: central columns carry the most
        eastbound traffic under uniform random."""
        r = self.run_tracked()
        east = int(Direction.E)
        col_load = {}
        for (coord, out_idx), count in r.metrics.link_counts.items():
            if out_idx == east:
                col_load[coord.x] = col_load.get(coord.x, 0) + count
        assert col_load[3] > 2 * col_load[0]
        assert col_load[3] > 2 * col_load[6]

    def test_utilization_normalization(self):
        r = self.run_tracked()
        utils = r.metrics.link_utilization(cycles=550)
        assert all(0 <= u <= 1.0 for u in utils.values())

    def test_hottest_links(self):
        r = self.run_tracked()
        top = r.metrics.hottest_links(5)
        assert len(top) == 5
        assert top[0][1] >= top[-1][1]

    def test_tracking_off_by_default(self):
        cfg = NetworkConfig.from_name("mesh", 6, 6)
        r = run_synthetic(cfg, "uniform_random", 0.05,
                          warmup=50, measure=100)
        with pytest.raises(ValueError):
            r.metrics.link_utilization(100)

    def test_ruche_offloads_local_links(self):
        """Ruche channels drain traffic off the local mesh links."""
        mesh = self.run_tracked("mesh")
        ruche = self.run_tracked("ruche3-pop")
        east = int(Direction.E)

        def east_total(run):
            return sum(
                c for (coord, o), c in run.metrics.link_counts.items()
                if o == east
            )

        assert east_total(ruche) < 0.6 * east_total(mesh)


class TestBitPermutationPatterns:
    def test_shuffle_rotates_index(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        pat = make_pattern("shuffle", cfg)
        rng = derive_rng(1, "s")
        # node 1 (index 1) -> index 2 -> coord (2, 0)
        assert pat(Coord(1, 0), rng) == Coord(2, 0)

    def test_bit_reverse_is_involution(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        pat = make_pattern("bit_reverse", cfg)
        rng = derive_rng(1, "b")
        for src in (Coord(3, 1), Coord(5, 6)):
            dest = pat(src, rng)
            if dest is None:
                continue
            back = pat(dest, rng)
            assert back == src

    def test_requires_power_of_two(self):
        cfg = NetworkConfig.from_name("mesh", 6, 6)
        with pytest.raises(ConfigError):
            make_pattern("shuffle", cfg)

    def test_patterns_simulate(self):
        cfg = NetworkConfig.from_name("ruche2-pop", 8, 8)
        for pattern in ("shuffle", "bit_reverse"):
            r = run_synthetic(cfg, pattern, 0.1, warmup=100,
                              measure=200, drain_limit=1000)
            assert r.drained


class TestMultiSeed:
    def test_spread_statistics(self):
        cfg = NetworkConfig.from_name("mesh", 6, 6)
        stats = multi_seed_run(cfg, "uniform_random", 0.1,
                               seeds=(1, 2, 3), warmup=100, measure=200)
        assert stats["seeds"] == 3
        assert stats["latency_spread"] >= 0
        assert stats["throughput_mean"] == pytest.approx(0.1, abs=0.02)

    def test_low_load_noise_is_small(self):
        cfg = NetworkConfig.from_name("mesh", 6, 6)
        stats = multi_seed_run(cfg, "uniform_random", 0.05,
                               seeds=(1, 2, 3, 4), warmup=100, measure=300)
        assert stats["latency_spread"] < 0.15 * stats["latency_mean"]


class TestPlots:
    def test_ascii_curve_renders_markers(self):
        text = ascii_curve({
            "mesh": [(0.1, 6.0), (0.2, 8.0), (0.3, 30.0)],
            "ruche": [(0.1, 4.0), (0.2, 5.0), (0.3, 7.0)],
        })
        assert "o=mesh" in text and "x=ruche" in text
        assert "o" in text.splitlines()[1] or any(
            "o" in line for line in text.splitlines()
        )

    def test_ascii_curve_caps_saturated_points(self):
        text = ascii_curve({"a": [(0.1, 5.0), (0.2, 1e6)]}, y_cap=100.0)
        assert "max 100" in text

    def test_ascii_curve_empty(self):
        assert ascii_curve({}) == "(no data)"

    def test_link_heatmap(self):
        cfg = NetworkConfig.from_name("mesh", 8, 8)
        r = run_synthetic(cfg, "uniform_random", 0.15, warmup=100,
                          measure=300, drain_limit=1000, track_links=True)
        text = link_heatmap(r.metrics.link_counts, 8, 8)
        lines = text.splitlines()
        assert len(lines) == 9  # header + 8 rows
        assert all(len(line) == 10 for line in lines[1:])

    def test_link_heatmap_empty_direction(self):
        text = link_heatmap({}, 4, 4, Direction.RE)
        assert "no traffic" in text
