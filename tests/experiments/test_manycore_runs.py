"""Unit tests for the shared manycore run cache and presets."""

from repro.experiments.manycore_runs import (
    FABRICS,
    KERNEL_PRESETS,
    kernel_params,
    machine_config,
    run_cached,
    size_for,
    suite_for,
)


class TestPresets:
    def test_fabrics_match_paper_order(self):
        assert FABRICS[0] == "mesh"
        assert "half-torus" in FABRICS
        assert sum(1 for f in FABRICS if f.startswith("ruche")) == 4

    def test_kernel_params_resolve_by_prefix(self):
        assert kernel_params("bfs-HW", "quick") == (
            KERNEL_PRESETS["quick"]["bfs"]
        )
        assert kernel_params("spgemm-CA", "smoke") == (
            KERNEL_PRESETS["smoke"]["spgemm"]
        )

    def test_kernel_params_returns_copy(self):
        a = kernel_params("jacobi", "quick")
        a["block"] = 999
        assert kernel_params("jacobi", "quick")["block"] != 999

    def test_scales_grow_problem_sizes(self):
        for kernel in ("jacobi", "sgemm", "bh"):
            smoke = KERNEL_PRESETS["smoke"][kernel]
            full = KERNEL_PRESETS["full"][kernel]
            assert all(
                full[k] >= smoke[k] for k in smoke if k in full
            )

    def test_suites(self):
        assert len(suite_for("smoke")) < len(suite_for("quick")) < len(
            suite_for("full")
        )
        assert suite_for("full") == __import__(
            "repro.manycore.kernels", fromlist=["benchmark_names"]
        ).benchmark_names()

    def test_sizes(self):
        assert size_for("smoke") == (8, 4)
        assert size_for("quick") == (16, 8)
        assert size_for("full") == (32, 16)


class TestCache:
    def test_run_cached_memoizes(self):
        a = run_cached("jacobi", "mesh", 8, 4, "smoke")
        b = run_cached("jacobi", "mesh", 8, 4, "smoke")
        assert a is b

    def test_machine_config_builder(self):
        cfg = machine_config("ruche2-depop", 16, 8)
        assert cfg.width == 16 and cfg.network == "ruche2-depop"


class TestTraceCapture:
    KEY = ("jacobi", "mesh", 8, 4, "smoke")

    def test_entries_carry_traces_and_provenance(self):
        from repro.experiments.manycore_runs import (
            PROVENANCE,
            run_entry,
        )

        entry = run_entry(*self.KEY)
        assert entry.provenance == PROVENANCE
        assert set(entry.traces) == {"fwd", "rev"}
        fwd = entry.traces["fwd"]
        assert fwd.records > 0
        assert fwd.provenance["schema"] == PROVENANCE
        assert fwd.options["dor_order"] == "xy"
        assert entry.traces["rev"].options["dor_order"] == "yx"

    def test_run_cached_returns_the_entry_stats(self):
        from repro.experiments.manycore_runs import run_entry

        entry = run_entry(*self.KEY)
        assert run_cached(*self.KEY) is entry.stats

    def test_stale_provenance_is_never_reused(self):
        import dataclasses

        from repro.experiments.manycore_runs import (
            _CACHE,
            _cache_key,
            run_entry,
        )

        entry = run_entry(*self.KEY)
        _CACHE[_cache_key(self.KEY)] = dataclasses.replace(
            entry, provenance="pre-trace-build", traces={}
        )
        fresh = run_entry(*self.KEY)
        assert fresh.provenance != "pre-trace-build"
        assert fresh.traces

    def test_write_traces_is_idempotent(self):
        from repro.experiments.manycore_runs import write_traces

        first = write_traces(self.KEY)
        second = write_traces(self.KEY)
        assert first == second
        assert set(first) == {"fwd", "rev"}

    def test_replay_result_matches_reference_replay(self):
        from repro.experiments.manycore_runs import replay_result

        ref = replay_result(*self.KEY, engine="reference")
        comp = replay_result(*self.KEY, engine="compiled")
        assert ref.engine == "reference"
        assert comp.engine == "compiled"
        assert comp.avg_latency == ref.avg_latency
        assert comp.metrics.delivered_total == (
            ref.metrics.delivered_total
        )
        assert comp.metrics.injected_total == (
            ref.metrics.injected_total
        )
