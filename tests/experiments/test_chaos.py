"""Chaos/soak harness (`repro.chaos`): seeded reproducibility, the
fairness and degradation math, and an end-to-end smoke campaign.

The harness's contract is that a whole campaign is a pure function of
``(scale, seed)`` and that every row runs on the compiled engine (the
point of compiling fault schedules).  The expensive probe-ladder rows
are exercised once at smoke scale; the pure-math helpers are pinned
directly.
"""

import math

import pytest

from repro import chaos
from repro.core.params import NetworkConfig
from repro.experiments.registry import experiment_ids, run_experiment


class TestHelpers:
    def test_scaled_counts_preserve_density(self):
        # At the reference 64-tile size the counts pass through…
        assert chaos._scaled(2, 64) == 2
        # …larger fabrics scale proportionally…
        assert chaos._scaled(2, 256) == 8
        # …smaller fabrics never round a nonzero tier down to zero…
        assert chaos._scaled(1, 16) == 1
        # …and a healthy tier stays healthy at every size.
        assert chaos._scaled(0, 1024) == 0

    def test_build_schedule_is_seed_deterministic(self):
        config = NetworkConfig.from_name("mesh", 8, 8)
        tier = next(t for t in chaos.TIERS if t["tier"] == "mauled")
        one = chaos.build_schedule(config, tier, 64, seed=4)
        two = chaos.build_schedule(config, tier, 64, seed=4)
        other = chaos.build_schedule(config, tier, 64, seed=5)
        assert one.killed_channels == two.killed_channels
        assert one.dead_routers == two.dead_routers
        assert one.transient == two.transient
        assert one.degraded_model and two.degraded_model
        assert (
            one.killed_channels,
            one.dead_routers,
            one.transient,
        ) != (
            other.killed_channels,
            other.dead_routers,
            other.transient,
        )

    def test_fairness_math(self):
        stats = chaos._fairness({"a": 10.0, "b": 20.0, "c": 30.0})
        assert stats["fairness_max_over_mean"] == pytest.approx(1.5)
        expected_cv = math.sqrt(200.0 / 3.0) / 20.0
        assert stats["fairness_cv"] == pytest.approx(expected_cv)

    def test_fairness_of_nothing_is_nan(self):
        for sources in ({}, {"a": float("nan")}):
            stats = chaos._fairness(sources)
            assert math.isnan(stats["fairness_max_over_mean"])
            assert math.isnan(stats["fairness_cv"])

    def test_attach_degradation_joins_against_baseline(self):
        rows = [
            dict(config="mesh", tier="baseline", p99_latency=10.0,
                 p999_latency=20.0, fairness_max_over_mean=1.25),
            dict(config="mesh", tier="mauled", p99_latency=30.0,
                 p999_latency=80.0, fairness_max_over_mean=2.5),
            dict(config="mesh", tier="wounded", deadlock=True),
        ]
        chaos._attach_degradation(rows)
        assert rows[1]["p99_latency_x"] == pytest.approx(3.0)
        assert rows[1]["p999_latency_x"] == pytest.approx(4.0)
        assert rows[1]["fairness_max_over_mean_x"] == pytest.approx(2.0)
        # The baseline is not joined against itself and a deadlocked
        # row has no tail metrics to ratio.
        assert "p99_latency_x" not in rows[0]
        assert "p99_latency_x" not in rows[2]

    def test_attach_degradation_without_baseline_is_noop(self):
        rows = [dict(config="mesh", tier="mauled", p99_latency=30.0,
                     p999_latency=80.0, fairness_max_over_mean=2.5)]
        chaos._attach_degradation(rows)
        assert "p99_latency_x" not in rows[0]


class TestRows:
    def test_row_is_reproducible_and_compiled(self):
        params = dict(
            config="mesh", scale="smoke", tier="baseline",
            fault_seed=0, seed=1,
        )
        first = chaos._run_row(dict(params))
        second = chaos._run_row(dict(params))
        assert first == second
        assert first["engine"] == "compiled"
        assert not first["deadlock"]
        # The healthy baseline carries the top of the probe ladder.
        assert first["sustained_rate"] == max(
            chaos._PRESETS["smoke"]["probe_rates"]
        )
        assert first["deadlock_load"] is None
        for column in ("p50_latency", "p99_latency", "p999_latency",
                       "fairness_max_over_mean", "fairness_cv"):
            assert first[column] > 0


class TestCampaign:
    def test_registered_as_experiment(self):
        assert "chaos" in experiment_ids()

    def test_smoke_campaign_end_to_end(self):
        result = run_experiment("chaos", scale="smoke", seed=0)
        assert result.experiment_id == "chaos"
        preset = chaos._PRESETS["smoke"]
        expected_rows = (
            len(preset["configs"])
            * len(chaos.TIERS)
            * len(preset["fault_seeds"])
        )
        assert len(result.rows) == expected_rows
        assert all(row["engine"] == "compiled" for row in result.rows)
        assert "FAILED ROWS" not in result.notes
        # Rows are sorted config-major, tier severity within.
        tier_order = [t["tier"] for t in chaos.TIERS]
        assert [row["tier"] for row in result.rows] == tier_order
        # Every completed faulted row carries degradation ratios
        # against its healthy baseline tier.
        faulted = [
            row for row in result.rows
            if row["tier"] != "baseline" and not row.get("deadlock")
        ]
        assert faulted
        for row in faulted:
            assert row["p99_latency_x"] > 0
            assert row["p999_latency_x"] > 0
        # Severity monotonicity of the probe ladder: a mauled fabric
        # never sustains more load than the healthy baseline.
        by_tier = {row["tier"]: row for row in result.rows}
        baseline = by_tier["baseline"]["sustained_rate"]
        mauled = by_tier["mauled"]["sustained_rate"]
        assert mauled is None or mauled <= baseline
