"""Parallel campaign sharding: determinism, crash recovery, atomicity.

The ``jobs > 1`` path of :func:`repro.experiments.campaign.run_campaign`
promises results bit-identical to a serial run.  These tests pin that
contract on a real fig6 slice, on hypothesis-generated grids, and on
the failure paths a process pool adds: worker crashes (pool rebuild +
per-row crash budget) and checkpoint writes killed mid-flush.
"""

import glob
import json
import os
import tempfile
import types

from hypothesis import given
from hypothesis import strategies as st

from property.settings import tiered_settings

from repro.errors import DeadlockError
from repro.experiments import campaign
from repro.experiments.campaign import (
    CheckpointStore,
    row_key,
    run_campaign,
)
from repro.experiments.fig6_synthetic_full import _run_row, make_grid
from repro.experiments.sweeps import run_rate_sweep_rows


def force_pool(monkeypatch):
    """Pretend the host has spare CPUs so ``jobs > 1`` really shards.

    On a single-CPU host ``run_campaign`` collapses ``jobs > 1`` to the
    inline serial path; these tests are *about* the pool (chunked
    submission, crash recovery), so they pin the CPU count up.
    """
    monkeypatch.setattr(campaign, "_usable_cpus", lambda: 8)

# --- module-level runners (must be picklable for the pool) -----------


def hash_runner(params):
    """Pure, cheap row: output depends only on the parameter dict."""
    digest = sum(ord(c) for c in row_key(params))
    return dict(params, value=digest)


def deadlock_until_retried(params):
    """Recoverable failure until the retry advances the seed."""
    if params["seed"] < 1000:
        raise DeadlockError("wedged at original seed")
    return dict(params, value=params["seed"])


def crash_once(params):
    """Hard worker death on first attempt; clean row once the
    sentinel exists."""
    sentinel = params["sentinel"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("crashed\n")
        os._exit(17)
    return dict(params, value="recovered")


def crash_always(params):
    if params.get("poison"):
        os._exit(17)
    return dict(params, value="fine")


def hash_batch_runner(params_list):
    """Batched counterpart of :func:`hash_runner`: same rows, no errors."""
    return [(hash_runner(p), None) for p in params_list]


def flaky_batch_runner(params_list):
    """Batched counterpart of :func:`deadlock_until_retried`: attempt 0
    fails for original seeds, exactly as the serial runner would."""
    out = []
    for p in params_list:
        if p["seed"] < 1000:
            out.append((None, DeadlockError("wedged at original seed")))
        else:
            out.append((dict(p, value=p["seed"]), None))
    return out


# --- serial/parallel equivalence -------------------------------------


class TestParallelEquivalence:
    def test_fig6_slice_identical_to_serial(self, monkeypatch):
        force_pool(monkeypatch)
        grid = make_grid("smoke", seed=1)[:2]
        serial = run_campaign(grid, _run_row, jobs=1)
        parallel = run_campaign(grid, _run_row, jobs=4)
        assert serial.ok and parallel.ok
        assert parallel.rows == serial.rows
        assert parallel.computed == serial.computed == len(grid)

    @tiered_settings(5, deadline=None)
    @given(
        grid=st.lists(
            st.fixed_dictionaries(
                {
                    "config": st.sampled_from(["mesh", "torus"]),
                    "load": st.integers(0, 5),
                    "seed": st.integers(0, 3),
                }
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_property_jobs_is_invisible(self, grid):
        serial = run_campaign(grid, hash_runner, jobs=1)
        parallel = run_campaign(grid, hash_runner, jobs=3)
        assert parallel.rows == serial.rows
        assert parallel.computed == serial.computed
        assert parallel.retried == serial.retried

    def test_recoverable_retries_run_inside_workers(self, monkeypatch):
        force_pool(monkeypatch)
        grid = [{"config": "mesh", "seed": s} for s in (1, 2, 3)]
        serial = run_campaign(grid, deadlock_until_retried, jobs=1)
        parallel = run_campaign(grid, deadlock_until_retried, jobs=2)
        assert parallel.rows == serial.rows
        assert serial.retried == parallel.retried == 3
        assert [r["value"] for r in parallel.rows] == [1001, 1002, 1003]

    def test_parallel_checkpoint_bytes_match_serial(
        self, tmp_path, monkeypatch
    ):
        force_pool(monkeypatch)
        grid = [{"config": "mesh", "load": n, "seed": 1}
                for n in range(4)]
        serial_path = str(tmp_path / "serial.json")
        parallel_path = str(tmp_path / "parallel.json")
        run_campaign(grid, hash_runner,
                     checkpoint=CheckpointStore(serial_path))
        run_campaign(grid, hash_runner,
                     checkpoint=CheckpointStore(parallel_path), jobs=3)
        with open(serial_path, "rb") as fh:
            serial_bytes = fh.read()
        with open(parallel_path, "rb") as fh:
            parallel_bytes = fh.read()
        assert serial_bytes == parallel_bytes

    def test_single_cpu_collapses_to_inline(self, monkeypatch):
        """On one schedulable CPU, jobs > 1 must not build a pool."""
        monkeypatch.setattr(campaign, "_usable_cpus", lambda: 1)

        def no_pool(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("pool built on a 1-CPU host")

        monkeypatch.setattr(campaign, "ProcessPoolExecutor", no_pool)
        grid = [{"config": "mesh", "load": n, "seed": 1}
                for n in range(4)]
        serial = run_campaign(grid, hash_runner, jobs=1)
        collapsed = run_campaign(grid, hash_runner, jobs=4)
        assert collapsed.rows == serial.rows
        assert collapsed.computed == serial.computed == len(grid)

    def test_chunks_cover_grid_round_robin(self, monkeypatch):
        """Chunked submission covers every row exactly once, any shape."""
        force_pool(monkeypatch)
        for rows, jobs in ((1, 4), (4, 4), (7, 3), (12, 5)):
            grid = [{"config": "mesh", "load": n, "seed": 1}
                    for n in range(rows)]
            serial = run_campaign(grid, hash_runner, jobs=1)
            parallel = run_campaign(grid, hash_runner, jobs=jobs)
            assert parallel.rows == serial.rows, (rows, jobs)
            assert parallel.computed == rows, (rows, jobs)

    def test_jobs_below_one_rejected(self):
        try:
            run_campaign([], hash_runner, jobs=0)
        except ValueError as exc:
            assert "jobs" in str(exc)
        else:  # pragma: no cover - failure path
            raise AssertionError("jobs=0 accepted")


# --- batched submission ----------------------------------------------


class TestBatchedCampaign:
    """``batch_runner`` must be invisible in every observable output:
    rows, checkpoint bytes, retry accounting, failure records."""

    def test_fig6_slice_batched_identical_to_serial(self):
        grid = make_grid("smoke", seed=1, engine="compiled")
        serial = run_campaign(grid, _run_row)
        batched = run_campaign(
            grid, _run_row, batch_runner=run_rate_sweep_rows
        )
        assert serial.ok and batched.ok
        assert batched.rows == serial.rows
        assert batched.computed == serial.computed == len(grid)

    def test_mixed_batchable_grid_identical(self):
        """Rows the batch gate rejects (reference engine, engine-less)
        fall back per-row inside the batch runner; the campaign output
        is indistinguishable."""
        grid = make_grid("smoke", seed=1, engine="compiled")[:2]
        grid += [dict(row) for row in make_grid("smoke", seed=1)[:1]]
        grid += [
            dict(row, engine="reference")
            for row in make_grid("smoke", seed=1)[1:2]
        ]
        serial = run_campaign(grid, _run_row)
        batched = run_campaign(
            grid, _run_row, batch_runner=run_rate_sweep_rows
        )
        assert batched.rows == serial.rows

    def test_batched_checkpoint_bytes_match_serial(self, tmp_path):
        grid = make_grid("smoke", seed=1, engine="compiled")[:3]
        serial_path = str(tmp_path / "serial.json")
        batched_path = str(tmp_path / "batched.json")
        run_campaign(grid, _run_row,
                     checkpoint=CheckpointStore(serial_path))
        run_campaign(grid, _run_row,
                     checkpoint=CheckpointStore(batched_path),
                     batch_runner=run_rate_sweep_rows)
        with open(serial_path, "rb") as fh:
            serial_bytes = fh.read()
        with open(batched_path, "rb") as fh:
            batched_bytes = fh.read()
        assert serial_bytes == batched_bytes

    def test_batch_failure_resumes_serial_retry_loop(self):
        """A row whose batched attempt 0 fails re-enters the serial
        retry loop at attempt 1: same retry seeds, same counters."""
        grid = [{"config": "mesh", "seed": s} for s in (1, 2, 3)]
        serial = run_campaign(grid, deadlock_until_retried)
        batched = run_campaign(
            grid, deadlock_until_retried,
            batch_runner=flaky_batch_runner,
        )
        assert batched.rows == serial.rows
        assert batched.retried == serial.retried == 3
        assert [r["value"] for r in batched.rows] == [1001, 1002, 1003]

    def test_batch_error_is_final_when_retries_exhausted(self):
        grid = [{"config": "mesh", "seed": 7}]
        serial = run_campaign(
            grid, deadlock_until_retried, max_retries=0
        )
        batched = run_campaign(
            grid, deadlock_until_retried, max_retries=0,
            batch_runner=flaky_batch_runner,
        )
        assert batched.rows == serial.rows
        failed = batched.rows[0]
        assert failed["failed"] and failed["attempts"] == 1
        assert "DeadlockError: wedged at original seed" in failed["error"]

    def test_single_row_batch(self):
        grid = [{"config": "mesh", "load": 0, "seed": 1}]
        serial = run_campaign(grid, hash_runner)
        batched = run_campaign(
            grid, hash_runner, batch_runner=hash_batch_runner
        )
        assert batched.rows == serial.rows
        assert batched.computed == 1

    def test_uneven_final_chunk_under_pool(self, monkeypatch):
        """7 rows over 3 workers: round-robin chunks of 3/2/2, each
        submitted as one batch; coverage and order must hold."""
        force_pool(monkeypatch)
        grid = [{"config": "mesh", "load": n, "seed": 1}
                for n in range(7)]
        serial = run_campaign(grid, hash_runner)
        parallel = run_campaign(
            grid, hash_runner, jobs=3,
            batch_runner=hash_batch_runner,
        )
        assert parallel.rows == serial.rows
        assert parallel.computed == 7

    def test_checkpointed_rows_never_resubmitted_to_batch(
        self, tmp_path
    ):
        grid = [{"config": "mesh", "load": n, "seed": 1}
                for n in range(4)]
        path = str(tmp_path / "ckpt.json")
        store = CheckpointStore(path)
        store.put(row_key(grid[0]), hash_runner(grid[0]))
        seen = []

        def recording_batch_runner(params_list):
            seen.extend(p["load"] for p in params_list)
            return hash_batch_runner(params_list)

        resumed = run_campaign(
            grid, hash_runner, checkpoint=CheckpointStore(path),
            batch_runner=recording_batch_runner,
        )
        assert resumed.reused == 1 and resumed.computed == 3
        assert seen == [1, 2, 3]
        assert resumed.rows == [hash_runner(p) for p in grid]

    @tiered_settings(10, deadline=None)
    @given(
        grid=st.lists(
            st.fixed_dictionaries(
                {
                    "config": st.sampled_from(["mesh", "torus"]),
                    "load": st.integers(0, 5),
                    "seed": st.integers(0, 2000),
                }
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_property_batching_is_invisible(self, grid):
        """Batched ≡ serial on arbitrary grids — rows, counters, and
        checkpoint bytes — including rows whose batched attempt fails
        (seeds < 1000) and rows that fail outright (no retry headroom
        would be seed >= 1000 already succeeding, so use default)."""
        with tempfile.TemporaryDirectory() as td:
            serial_path = os.path.join(td, "serial.json")
            batched_path = os.path.join(td, "batched.json")
            serial = run_campaign(
                grid, deadlock_until_retried,
                checkpoint=CheckpointStore(serial_path),
            )
            batched = run_campaign(
                grid, deadlock_until_retried,
                checkpoint=CheckpointStore(batched_path),
                batch_runner=flaky_batch_runner,
            )
            assert batched.rows == serial.rows
            assert batched.computed == serial.computed
            assert batched.retried == serial.retried
            assert len(batched.failures) == len(serial.failures)
            serial_bytes = (
                open(serial_path, "rb").read()
                if os.path.exists(serial_path) else b""
            )
            batched_bytes = (
                open(batched_path, "rb").read()
                if os.path.exists(batched_path) else b""
            )
            assert serial_bytes == batched_bytes


# --- worker-crash policy ---------------------------------------------


class TestWorkerCrashes:
    def test_crashed_worker_is_retried_on_fresh_pool(
        self, tmp_path, monkeypatch
    ):
        force_pool(monkeypatch)
        sentinel = str(tmp_path / "crashed-once")
        grid = [{"config": "mesh", "seed": 1, "sentinel": sentinel}]
        result = run_campaign(grid, crash_once, jobs=2)
        assert result.ok
        assert result.rows[0]["value"] == "recovered"
        assert os.path.exists(sentinel)

    def test_poisoned_row_fails_without_killing_campaign(
        self, monkeypatch
    ):
        force_pool(monkeypatch)
        grid = [
            {"config": "mesh", "seed": 1},
            {"config": "torus", "seed": 2},
            {"config": "mesh", "seed": 3, "poison": True},
        ]
        result = run_campaign(grid, crash_always, jobs=2, max_retries=2)
        assert not result.ok
        assert len(result.failures) == 1
        poisoned = result.rows[2]
        assert poisoned["failed"]
        assert "worker process crashed" in poisoned["error"]
        # The healthy rows still completed, in grid order.
        assert result.rows[0]["value"] == "fine"
        assert result.rows[1]["value"] == "fine"


# --- crash backoff ----------------------------------------------------


class TestCrashBackoff:
    """Pool rebuilds wait out a capped exponential backoff, with
    deterministic seeded jitter — no wall-clock or PID entropy."""

    @staticmethod
    def record_sleeps(monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            campaign, "time", types.SimpleNamespace(sleep=sleeps.append)
        )
        return sleeps

    def test_backoff_deterministic_jittered_capped(self):
        delays = [
            campaign._crash_backoff_seconds(w) for w in range(1, 12)
        ]
        # Reproducible: the jitter comes from a per-wave seeded stream.
        assert delays == [
            campaign._crash_backoff_seconds(w) for w in range(1, 12)
        ]
        for wave, delay in enumerate(delays, start=1):
            ceiling = min(
                campaign._BACKOFF_CAP,
                campaign._BACKOFF_BASE * 2.0 ** (wave - 1),
            )
            assert 0.5 * ceiling <= delay <= ceiling, (wave, delay)
        # Jitter desynchronizes waves (not all at the same fraction).
        fractions = {
            round(d / min(campaign._BACKOFF_CAP,
                          campaign._BACKOFF_BASE * 2.0 ** w), 6)
            for w, d in enumerate(delays)
        }
        assert len(fractions) > 1

    def test_healthy_pool_never_backs_off(self, monkeypatch):
        force_pool(monkeypatch)
        sleeps = self.record_sleeps(monkeypatch)
        grid = [{"config": "mesh", "load": n, "seed": 1}
                for n in range(4)]
        result = run_campaign(grid, hash_runner, jobs=3)
        assert result.ok
        assert sleeps == []

    def test_single_crash_sleeps_one_interval(
        self, tmp_path, monkeypatch
    ):
        force_pool(monkeypatch)
        sleeps = self.record_sleeps(monkeypatch)
        sentinel = str(tmp_path / "crashed-once")
        grid = [{"config": "mesh", "seed": 1, "sentinel": sentinel}]
        result = run_campaign(grid, crash_once, jobs=2)
        assert result.ok
        assert sleeps == [campaign._crash_backoff_seconds(1)]

    def test_poisoned_row_escalates_per_wave(self, monkeypatch):
        force_pool(monkeypatch)
        sleeps = self.record_sleeps(monkeypatch)
        grid = [{"config": "mesh", "seed": 1, "poison": True}]
        result = run_campaign(grid, crash_always, jobs=2, max_retries=2)
        assert not result.ok
        # One sleep per rebuild wave: max_retries + 1 waves, doubling
        # (modulo jitter) and never above the cap.
        assert sleeps == [
            campaign._crash_backoff_seconds(w) for w in (1, 2, 3)
        ]
        assert sleeps == sorted(sleeps)
        assert all(s <= campaign._BACKOFF_CAP for s in sleeps)


# --- checkpoint atomicity under a kill mid-write ---------------------


class TestCheckpointAtomicity:
    def test_kill_mid_write_preserves_file_and_resumes(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "ckpt.json")
        grid = [{"config": "mesh", "load": n, "seed": 1}
                for n in range(3)]

        store = CheckpointStore(path)
        store.put(row_key(grid[0]), hash_runner(grid[0]))
        with open(path, "rb") as fh:
            good_bytes = fh.read()

        real_dump = json.dump

        def dying_dump(obj, fh, **kwargs):
            fh.write('{"half-written')
            fh.flush()
            raise KeyboardInterrupt("killed mid-write")

        with monkeypatch.context() as patched:
            patched.setattr(
                "repro.experiments.campaign.json.dump", dying_dump
            )
            try:
                store.put(row_key(grid[1]), hash_runner(grid[1]))
            except KeyboardInterrupt:
                pass
            else:  # pragma: no cover - failure path
                raise AssertionError("dying dump did not raise")

        assert json.dump is real_dump
        # The committed file is untouched and no temp files leak.
        with open(path, "rb") as fh:
            assert fh.read() == good_bytes
        assert glob.glob(str(tmp_path / ".campaign-*")) == []

        # A fresh process resumes cleanly: row 0 reused, rest computed.
        resumed = run_campaign(
            grid, hash_runner, checkpoint=CheckpointStore(path)
        )
        assert resumed.ok
        assert resumed.reused == 1 and resumed.computed == 2
        assert resumed.rows == [hash_runner(p) for p in grid]
