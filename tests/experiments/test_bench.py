"""Unit tests for the repro.bench microbenchmark harness."""

import pytest

from repro.bench import (
    BATCHED_SPEEDUP_FLOOR,
    CAMPAIGN_JOBS_SPEEDUP_FLOOR,
    CASES,
    SCHEMA,
    SPEEDUP_FLOORS,
    compare_to_baseline,
    load_report,
    measure_case,
    render_markdown,
    write_report,
)


def _report(cases, campaign=None):
    report = {
        "schema": SCHEMA,
        "mode": "quick",
        "cases": [
            {"name": name, "cycles_per_sec": cps}
            for name, cps in cases.items()
        ],
    }
    if campaign is not None:
        report["campaign"] = campaign
    return report


class TestCompareToBaseline:
    def setup_method(self):
        self.base = _report({"mesh": 1000.0, "torus": 500.0})

    def test_within_tolerance_passes(self):
        report = _report({"mesh": 900.0, "torus": 520.0})
        regressions, notes = compare_to_baseline(
            report, self.base, tolerance=0.20
        )
        assert regressions == [] and notes == []

    def test_slowdown_past_tolerance_is_regression(self):
        report = _report({"mesh": 700.0, "torus": 500.0})
        regressions, _ = compare_to_baseline(
            report, self.base, tolerance=0.20
        )
        assert len(regressions) == 1
        assert "mesh" in regressions[0]
        assert "below the tolerance floor" in regressions[0]

    def test_missing_case_is_regression(self):
        report = _report({"mesh": 1000.0})
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == ["torus[reference]: missing from report"]

    def test_improvement_is_note_not_failure(self):
        report = _report({"mesh": 1500.0, "torus": 500.0})
        regressions, notes = compare_to_baseline(
            report, self.base, tolerance=0.20
        )
        assert regressions == []
        assert len(notes) == 1 and "refreshing" in notes[0]

    def test_extra_report_case_ignored(self):
        report = _report(
            {"mesh": 1000.0, "torus": 500.0, "newcase": 1.0}
        )
        regressions, notes = compare_to_baseline(report, self.base)
        assert regressions == [] and notes == []

    def test_nonidentical_campaign_rows_are_regression(self):
        report = _report(
            {"mesh": 1000.0, "torus": 500.0},
            campaign={"rows_identical": False},
        )
        regressions, _ = compare_to_baseline(report, self.base)
        assert any("determinism" in r for r in regressions)

    def test_identical_campaign_rows_pass(self):
        report = _report(
            {"mesh": 1000.0, "torus": 500.0},
            campaign={"rows_identical": True},
        )
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == []


class TestReportIO:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "bench.json")
        report = _report({"mesh": 1234.5})
        write_report(report, path)
        assert load_report(path) == report

    def test_unknown_schema_rejected(self, tmp_path):
        path = str(tmp_path / "bad.json")
        write_report(dict(_report({}), schema="something-else"), path)
        with pytest.raises(ValueError, match="unknown bench schema"):
            load_report(path)


class TestMeasureCase:
    def test_smallest_case_reports_sane_numbers(self):
        case = measure_case("mesh-8x8-ur", repeats=1)
        assert case["name"] == "mesh-8x8-ur"
        assert case["total_cycles"] > 0
        assert case["best_seconds"] > 0
        assert case["cycles_per_sec"] == pytest.approx(
            case["total_cycles"] / case["best_seconds"], rel=1e-3
        )

    def test_all_canonical_cases_are_well_formed(self):
        for name, case in CASES.items():
            if "trace" in case:
                # Replay cases carry a run key instead of a window;
                # the rate is pinned at 1.0 by the replay contract.
                assert len(case["trace"]) == 5
                assert case["rate"] == 1.0
                continue
            assert case["measure"] > 0 and case["warmup"] >= 0
            assert case["drain_limit"] >= case["measure"]
            assert 0.0 < case["rate"] <= 1.0


def _case(name, cps, engine=None, **extra):
    case = {"name": name, "cycles_per_sec": cps}
    if engine is not None:
        case["engine"] = engine
    case.update(extra)
    return case


class TestEngineAwareGate:
    """Schema-v2 behaviour: cases keyed by (name, engine)."""

    def setup_method(self):
        self.base = {
            "schema": SCHEMA,
            "cases": [
                _case("mesh", 1000.0, engine="reference"),
                _case("mesh", 5000.0, engine="compiled"),
            ],
        }

    def test_engines_compared_independently(self):
        report = {
            "schema": SCHEMA,
            "cases": [
                _case("mesh", 1000.0, engine="reference"),
                _case("mesh", 3000.0, engine="compiled"),
            ],
        }
        regressions, _ = compare_to_baseline(report, self.base)
        assert len(regressions) == 1
        assert "mesh[compiled]" in regressions[0]

    def test_missing_engine_entry_is_regression(self):
        report = {
            "schema": SCHEMA,
            "cases": [_case("mesh", 1000.0, engine="reference")],
        }
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == ["mesh[compiled]: missing from report"]

    def test_v1_baseline_entries_compare_as_reference(self):
        v1_base = {"schema": "repro-bench-v1",
                   "cases": [_case("mesh", 1000.0)]}
        report = {
            "schema": SCHEMA,
            "cases": [_case("mesh", 980.0, engine="reference")],
        }
        regressions, notes = compare_to_baseline(report, v1_base)
        assert regressions == [] and notes == []

    def test_campaign_speedup_below_one_is_regression(self):
        report = dict(self.base, campaign={
            "rows_identical": True, "speedup": 0.95,
        })
        regressions, _ = compare_to_baseline(report, self.base)
        assert any("speedup 0.95 < 1.0" in r for r in regressions)

    def test_baseline_without_campaign_section_tolerated(self):
        report = dict(self.base, campaign={
            "rows_identical": True, "speedup": 1.4,
        })
        regressions, notes = compare_to_baseline(report, self.base)
        assert regressions == [] and notes == []

    def test_campaign_speedup_decline_is_note_not_failure(self):
        base = dict(self.base, campaign={"speedup": 2.0,
                                         "rows_identical": True})
        report = dict(self.base, campaign={"speedup": 1.1,
                                           "rows_identical": True})
        regressions, notes = compare_to_baseline(report, base)
        assert regressions == []
        assert len(notes) == 1 and "host-dependent" in notes[0]


class TestSpeedupFloors:
    """Pinned engine-level wins gate on speedup_vs_reference."""

    def setup_method(self):
        self.base = {
            "schema": SCHEMA,
            "cases": [
                _case("torus-64x8-ur", 250.0, engine="reference"),
                _case("torus-64x8-ur", 5000.0, engine="compiled",
                      speedup_vs_reference=20.0),
            ],
        }

    def test_floor_is_pinned_for_vc_case(self):
        assert SPEEDUP_FLOORS[("torus-64x8-ur", "compiled")] == 5.0

    def test_speedup_above_floor_passes(self):
        regressions, _ = compare_to_baseline(self.base, self.base)
        assert regressions == []

    def test_speedup_below_floor_is_regression(self):
        report = {
            "schema": SCHEMA,
            "cases": [
                _case("torus-64x8-ur", 250.0, engine="reference"),
                _case("torus-64x8-ur", 5000.0, engine="compiled",
                      speedup_vs_reference=3.1),
            ],
        }
        regressions, _ = compare_to_baseline(report, self.base)
        assert any("pinned floor 5.0x" in r for r in regressions)

    def test_missing_speedup_not_gated(self):
        """A compiled-only run carries no speedup; the floor cannot
        apply without a same-run reference measurement."""
        report = {
            "schema": SCHEMA,
            "cases": [
                _case("torus-64x8-ur", 250.0, engine="reference"),
                _case("torus-64x8-ur", 5000.0, engine="compiled"),
            ],
        }
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == []


class TestCampaignCpuAwareGate:
    def setup_method(self):
        self.base = _report({"mesh": 1000.0})

    def _campaign(self, speedup, usable_cpus):
        return {
            "rows_identical": True,
            "speedup": speedup,
            "usable_cpus": usable_cpus,
        }

    def test_single_cpu_host_tolerates_speedup_below_one(self):
        report = _report(
            {"mesh": 1000.0}, campaign=self._campaign(0.94, 1)
        )
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == []

    def test_multi_cpu_host_gates_speedup_below_one(self):
        report = _report(
            {"mesh": 1000.0}, campaign=self._campaign(0.94, 2)
        )
        regressions, _ = compare_to_baseline(report, self.base)
        assert any("speedup 0.94 < 1.0" in r for r in regressions)

    def test_four_cpu_host_gates_jobs_floor(self):
        report = _report(
            {"mesh": 1000.0}, campaign=self._campaign(1.5, 4)
        )
        regressions, _ = compare_to_baseline(report, self.base)
        assert any(
            f"below the floor {CAMPAIGN_JOBS_SPEEDUP_FLOOR}x" in r
            for r in regressions
        )

    def test_four_cpu_host_passes_above_jobs_floor(self):
        report = _report(
            {"mesh": 1000.0}, campaign=self._campaign(2.8, 4)
        )
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == []

    def test_two_cpu_host_not_held_to_jobs_floor(self):
        report = _report(
            {"mesh": 1000.0}, campaign=self._campaign(1.5, 2)
        )
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == []


class TestBatchedCampaignGate:
    def setup_method(self):
        self.base = _report({"mesh": 1000.0})
        self.base["campaign_batched"] = {
            "rows_identical": True, "speedup_vs_unbatched": 2.5,
        }

    def test_healthy_batched_section_passes(self):
        report = _report({"mesh": 1000.0})
        report["campaign_batched"] = {
            "rows_identical": True, "speedup_vs_unbatched": 2.4,
        }
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == []

    def test_nonidentical_batched_rows_are_regression(self):
        report = _report({"mesh": 1000.0})
        report["campaign_batched"] = {
            "rows_identical": False, "speedup_vs_unbatched": 3.0,
        }
        regressions, _ = compare_to_baseline(report, self.base)
        assert any("bit-identity" in r for r in regressions)

    def test_batched_speedup_below_floor_is_regression(self):
        report = _report({"mesh": 1000.0})
        report["campaign_batched"] = {
            "rows_identical": True,
            "speedup_vs_unbatched": BATCHED_SPEEDUP_FLOOR - 0.5,
        }
        regressions, _ = compare_to_baseline(report, self.base)
        assert any(
            f"below the floor {BATCHED_SPEEDUP_FLOOR}x" in r
            for r in regressions
        )

    def test_dropped_batched_section_is_regression(self):
        report = _report({"mesh": 1000.0})
        regressions, _ = compare_to_baseline(report, self.base)
        assert any(
            "campaign_batched section missing" in r for r in regressions
        )

    def test_baseline_without_batched_section_tolerated(self):
        report = _report({"mesh": 1000.0})
        regressions, _ = compare_to_baseline(
            report, _report({"mesh": 1000.0})
        )
        assert regressions == []


class TestRenderMarkdown:
    def test_renders_cases_and_campaign_sections(self):
        report = {
            "schema": SCHEMA,
            "mode": "full",
            "cases": [
                dict(_case("mesh-8x8-ur", 4500.0, engine="reference"),
                     total_cycles=617, best_seconds=0.137),
                dict(_case("mesh-8x8-ur", 27000.0, engine="compiled",
                           speedup_vs_reference=6.0),
                     total_cycles=617, best_seconds=0.023),
            ],
            "campaign": {
                "grid_rows": 4,
                "usable_cpus": 1,
                "rows_identical": True,
                "speedup": 0.97,
                "wall_seconds_by_jobs": {"1": 0.14, "4": 0.15},
            },
            "campaign_batched": {
                "grid_rows": 4,
                "rows_identical": True,
                "speedup_vs_unbatched": 2.6,
                "wall_seconds": {"per_row": 0.4, "batched": 0.15},
            },
        }
        text = render_markdown(report)
        assert "| mesh-8x8-ur | compiled |" in text
        assert "6.00x" in text
        assert "**Campaign scaling**" in text
        assert "**Batched campaign**" in text
        assert "2.60x vs per-row" in text

    def test_minimal_report_renders(self):
        text = render_markdown({"mode": "quick", "cases": []})
        assert text.startswith("### Bench (quick mode)")


class TestSchemaCompatibility:
    def test_v1_reports_still_load(self, tmp_path):
        path = str(tmp_path / "v1.json")
        report = dict(_report({"mesh": 1.0}), schema="repro-bench-v1")
        write_report(report, path)
        assert load_report(path) == report

    def test_measure_case_records_engine(self):
        case = measure_case("mesh-8x8-ur", repeats=1, engine="compiled")
        assert case["engine"] == "compiled"
        assert case["cycles_per_sec"] > 0
