"""Unit tests for the repro.bench microbenchmark harness."""

import pytest

from repro.bench import (
    CASES,
    SCHEMA,
    compare_to_baseline,
    load_report,
    measure_case,
    write_report,
)


def _report(cases, campaign=None):
    report = {
        "schema": SCHEMA,
        "mode": "quick",
        "cases": [
            {"name": name, "cycles_per_sec": cps}
            for name, cps in cases.items()
        ],
    }
    if campaign is not None:
        report["campaign"] = campaign
    return report


class TestCompareToBaseline:
    def setup_method(self):
        self.base = _report({"mesh": 1000.0, "torus": 500.0})

    def test_within_tolerance_passes(self):
        report = _report({"mesh": 900.0, "torus": 520.0})
        regressions, notes = compare_to_baseline(
            report, self.base, tolerance=0.20
        )
        assert regressions == [] and notes == []

    def test_slowdown_past_tolerance_is_regression(self):
        report = _report({"mesh": 700.0, "torus": 500.0})
        regressions, _ = compare_to_baseline(
            report, self.base, tolerance=0.20
        )
        assert len(regressions) == 1
        assert "mesh" in regressions[0]
        assert "below the tolerance floor" in regressions[0]

    def test_missing_case_is_regression(self):
        report = _report({"mesh": 1000.0})
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == ["torus[reference]: missing from report"]

    def test_improvement_is_note_not_failure(self):
        report = _report({"mesh": 1500.0, "torus": 500.0})
        regressions, notes = compare_to_baseline(
            report, self.base, tolerance=0.20
        )
        assert regressions == []
        assert len(notes) == 1 and "refreshing" in notes[0]

    def test_extra_report_case_ignored(self):
        report = _report(
            {"mesh": 1000.0, "torus": 500.0, "newcase": 1.0}
        )
        regressions, notes = compare_to_baseline(report, self.base)
        assert regressions == [] and notes == []

    def test_nonidentical_campaign_rows_are_regression(self):
        report = _report(
            {"mesh": 1000.0, "torus": 500.0},
            campaign={"rows_identical": False},
        )
        regressions, _ = compare_to_baseline(report, self.base)
        assert any("determinism" in r for r in regressions)

    def test_identical_campaign_rows_pass(self):
        report = _report(
            {"mesh": 1000.0, "torus": 500.0},
            campaign={"rows_identical": True},
        )
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == []


class TestReportIO:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "bench.json")
        report = _report({"mesh": 1234.5})
        write_report(report, path)
        assert load_report(path) == report

    def test_unknown_schema_rejected(self, tmp_path):
        path = str(tmp_path / "bad.json")
        write_report(dict(_report({}), schema="something-else"), path)
        with pytest.raises(ValueError, match="unknown bench schema"):
            load_report(path)


class TestMeasureCase:
    def test_smallest_case_reports_sane_numbers(self):
        case = measure_case("mesh-8x8-ur", repeats=1)
        assert case["name"] == "mesh-8x8-ur"
        assert case["total_cycles"] > 0
        assert case["best_seconds"] > 0
        assert case["cycles_per_sec"] == pytest.approx(
            case["total_cycles"] / case["best_seconds"], rel=1e-3
        )

    def test_all_canonical_cases_are_well_formed(self):
        for name, case in CASES.items():
            assert case["measure"] > 0 and case["warmup"] >= 0
            assert case["drain_limit"] >= case["measure"]
            assert 0.0 < case["rate"] <= 1.0


def _case(name, cps, engine=None, **extra):
    case = {"name": name, "cycles_per_sec": cps}
    if engine is not None:
        case["engine"] = engine
    case.update(extra)
    return case


class TestEngineAwareGate:
    """Schema-v2 behaviour: cases keyed by (name, engine)."""

    def setup_method(self):
        self.base = {
            "schema": SCHEMA,
            "cases": [
                _case("mesh", 1000.0, engine="reference"),
                _case("mesh", 5000.0, engine="compiled"),
            ],
        }

    def test_engines_compared_independently(self):
        report = {
            "schema": SCHEMA,
            "cases": [
                _case("mesh", 1000.0, engine="reference"),
                _case("mesh", 3000.0, engine="compiled"),
            ],
        }
        regressions, _ = compare_to_baseline(report, self.base)
        assert len(regressions) == 1
        assert "mesh[compiled]" in regressions[0]

    def test_missing_engine_entry_is_regression(self):
        report = {
            "schema": SCHEMA,
            "cases": [_case("mesh", 1000.0, engine="reference")],
        }
        regressions, _ = compare_to_baseline(report, self.base)
        assert regressions == ["mesh[compiled]: missing from report"]

    def test_v1_baseline_entries_compare_as_reference(self):
        v1_base = {"schema": "repro-bench-v1",
                   "cases": [_case("mesh", 1000.0)]}
        report = {
            "schema": SCHEMA,
            "cases": [_case("mesh", 980.0, engine="reference")],
        }
        regressions, notes = compare_to_baseline(report, v1_base)
        assert regressions == [] and notes == []

    def test_campaign_speedup_below_one_is_regression(self):
        report = dict(self.base, campaign={
            "rows_identical": True, "speedup": 0.95,
        })
        regressions, _ = compare_to_baseline(report, self.base)
        assert any("speedup 0.95 < 1.0" in r for r in regressions)

    def test_baseline_without_campaign_section_tolerated(self):
        report = dict(self.base, campaign={
            "rows_identical": True, "speedup": 1.4,
        })
        regressions, notes = compare_to_baseline(report, self.base)
        assert regressions == [] and notes == []

    def test_campaign_speedup_decline_is_note_not_failure(self):
        base = dict(self.base, campaign={"speedup": 2.0,
                                         "rows_identical": True})
        report = dict(self.base, campaign={"speedup": 1.1,
                                           "rows_identical": True})
        regressions, notes = compare_to_baseline(report, base)
        assert regressions == []
        assert len(notes) == 1 and "host-dependent" in notes[0]


class TestSchemaCompatibility:
    def test_v1_reports_still_load(self, tmp_path):
        path = str(tmp_path / "v1.json")
        report = dict(_report({"mesh": 1.0}), schema="repro-bench-v1")
        write_report(report, path)
        assert load_report(path) == report

    def test_measure_case_records_engine(self):
        case = measure_case("mesh-8x8-ur", repeats=1, engine="compiled")
        assert case["engine"] == "compiled"
        assert case["cycles_per_sec"] > 0
