"""Tests for hardened campaigns: checkpointing and seed retries."""

import json

import pytest

from repro.errors import DeadlockError, SimulationTimeout
from repro.experiments.campaign import (
    CheckpointStore,
    row_key,
    run_campaign,
)

GRID = [
    {"config": "mesh", "fault_count": n, "seed": 1} for n in (0, 1, 2)
]


def ok_runner(params):
    return dict(params, value=params["fault_count"] * 10)


class TestRowKey:
    def test_insertion_order_irrelevant(self):
        a = row_key({"x": 1, "y": 2})
        b = row_key({"y": 2, "x": 1})
        assert a == b

    def test_distinct_params_distinct_keys(self):
        assert row_key({"x": 1}) != row_key({"x": 2})


class TestCheckpointResume:
    def test_completed_rows_not_recomputed(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        calls = []

        def runner(params):
            calls.append(params["fault_count"])
            return ok_runner(params)

        first = run_campaign(GRID, runner,
                             checkpoint=CheckpointStore(path))
        assert first.computed == 3 and first.reused == 0
        assert calls == [0, 1, 2]

        calls.clear()
        second = run_campaign(GRID, runner,
                              checkpoint=CheckpointStore(path))
        assert second.computed == 0 and second.reused == 3
        assert calls == []
        assert second.rows == first.rows

    def test_partial_checkpoint_resumes_midway(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        store = CheckpointStore(path)
        # Simulate a campaign killed after its first row.
        store.put(row_key(GRID[0]), ok_runner(GRID[0]))

        calls = []

        def runner(params):
            calls.append(params["fault_count"])
            return ok_runner(params)

        result = run_campaign(GRID, runner,
                              checkpoint=CheckpointStore(path))
        assert calls == [1, 2]
        assert result.reused == 1 and result.computed == 2
        assert [r["value"] for r in result.rows] == [0, 10, 20]

    def test_checkpoint_file_is_valid_json(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        run_campaign(GRID, ok_runner, checkpoint=CheckpointStore(path))
        with open(path) as fh:
            data = json.load(fh)
        assert len(data) == 3


class TestRetries:
    def test_deadlock_retried_with_fresh_seed(self):
        seeds = []

        def runner(params):
            seeds.append(params["seed"])
            if len(seeds) < 3:
                raise DeadlockError("wedged")
            return dict(params, value=1)

        result = run_campaign([{"config": "mesh", "seed": 7}], runner,
                              max_retries=2, retry_seed_stride=1000)
        assert seeds == [7, 1007, 2007]
        assert result.ok and result.retried == 2
        # The surviving row records the seed that actually worked.
        assert result.rows[0]["seed"] == 2007

    def test_exhausted_retries_record_failed_row(self, tmp_path):
        path = str(tmp_path / "ckpt.json")

        def runner(params):
            raise SimulationTimeout("budget blown")

        result = run_campaign([{"config": "mesh", "seed": 1}], runner,
                              checkpoint=CheckpointStore(path),
                              max_retries=1)
        assert not result.ok
        row = result.rows[0]
        assert row["failed"] and "SimulationTimeout" in row["error"]
        assert row["attempts"] == 2
        # Failed rows are not checkpointed: a rerun tries them again.
        assert len(CheckpointStore(path)) == 0

    def test_programming_errors_propagate(self):
        def runner(params):
            raise TypeError("bug, not a sim failure")

        with pytest.raises(TypeError):
            run_campaign([{"seed": 1}], runner)


class TestDegradationAnalysis:
    def test_fractions_relative_to_zero_fault_row(self):
        from repro.analysis.degradation import (
            degradation_curves,
            worst_case_retention,
        )

        rows = [
            {"config": "mesh", "fault_count": 0,
             "saturation_throughput": 0.4, "zero_load_latency": 5.0},
            {"config": "mesh", "fault_count": 2,
             "saturation_throughput": 0.2, "zero_load_latency": 6.0},
            {"config": "mesh", "fault_count": 1, "failed": True},
        ]
        curves = degradation_curves(rows)
        points = curves["mesh"]
        assert len(points) == 2  # failed row skipped
        assert points[1]["throughput_frac"] == pytest.approx(0.5)
        assert points[1]["latency_frac"] == pytest.approx(1.2)
        assert worst_case_retention(curves) == {"mesh": pytest.approx(0.5)}

    def test_missing_baseline_raises(self):
        from repro.analysis.degradation import degradation_curves

        with pytest.raises(ValueError):
            degradation_curves([
                {"config": "mesh", "fault_count": 1,
                 "saturation_throughput": 0.2, "zero_load_latency": 6.0},
            ])


class TestCheckpointCorruption:
    def test_corrupt_file_raises_clear_error(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{broken json")
        with pytest.raises(ValueError, match="not valid JSON"):
            CheckpointStore(str(path))


class TestPreflight:
    def test_clean_preflight_runs_campaign(self):
        seen = []

        def preflight():
            seen.append(True)
            return []

        result = run_campaign(GRID, ok_runner, preflight=preflight)
        assert seen == [True]
        assert result.ok and result.computed == len(GRID)

    def test_failing_preflight_aborts_before_any_row(self):
        from repro.errors import ConfigError

        calls = []

        def runner(params):
            calls.append(params)
            return dict(params)

        with pytest.raises(ConfigError, match="preflight failed"):
            run_campaign(
                GRID, runner,
                preflight=lambda: ["mesh 8x8: channel dependency cycle"],
            )
        assert calls == []

    def test_campaign_preflight_verifies_real_configs(self):
        from repro.core.params import NetworkConfig
        from repro.verify import campaign_preflight

        check = campaign_preflight(
            NetworkConfig.from_name(name, 4, 4)
            for name in ("mesh", "ruche2-depop")
        )
        assert check() == []

    def test_campaign_preflight_names_broken_config(self, monkeypatch):
        from repro.core.params import NetworkConfig
        from repro.verify import preflight as preflight_mod
        from repro.verify.report import VerificationReport

        def broken_verify(config, routing=None, **kwargs):
            report = VerificationReport(
                config=config.name, width=config.width,
                height=config.height, algorithm="MeshDOR", dor_order="xy",
            )
            report.illegal_turns.append("(1, 1): W -> N")
            return report

        monkeypatch.setattr(preflight_mod, "verify_config", broken_verify)
        config = NetworkConfig.from_name("mesh", 4, 4)
        problems = preflight_mod.campaign_preflight([config])()
        assert len(problems) == 1
        assert "mesh" in problems[0] and "W -> N" in problems[0]

    def test_preflight_dedups_repeated_design_points(self, monkeypatch):
        from repro.core.params import NetworkConfig
        from repro.verify import preflight as preflight_mod

        calls = []
        real = preflight_mod.verify_config

        def counting_verify(config, routing=None, **kwargs):
            calls.append(config.name)
            return real(config, routing, **kwargs)

        monkeypatch.setattr(preflight_mod, "verify_config", counting_verify)
        config = NetworkConfig.from_name("mesh", 4, 4)
        assert preflight_mod.campaign_preflight([config, config])() == []
        assert calls == ["mesh"]
