"""Experiment-layer tests: registry, result helpers, smoke runs."""

import pytest

from repro.experiments import describe, experiment_ids, run_experiment
from repro.experiments.base import ExperimentResult, resolve_scale


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(experiment_ids())
        assert ids == {
            "table1", "fig5", "fig6", "fig7", "table2", "table3",
            "fig8", "fig9", "table4", "fig10", "fig11", "fig12",
            "fig13", "table6", "sweep3d", "tail", "faults", "chaos",
        }

    def test_describe(self):
        assert "Ruche" in describe("fig6") or "synthetic" in describe("fig6")

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestResultHelpers:
    def make(self):
        return ExperimentResult(
            experiment_id="x",
            title="t",
            rows=[{"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 2, "b": 4}],
            scale="smoke",
        )

    def test_lookup_and_single(self):
        result = self.make()
        assert len(result.lookup(a=1)) == 2
        assert result.single(a=2)["b"] == 4
        with pytest.raises(KeyError):
            result.single(a=1)

    def test_column(self):
        assert self.make().column("b") == [2, 3, 4]

    def test_report_contains_id_and_rows(self):
        text = self.make().report()
        assert "[x]" in text and "scale=smoke" in text

    def test_resolve_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale(None) == "quick"
        assert resolve_scale("full") == "full"
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert resolve_scale(None) == "smoke"
        with pytest.raises(ValueError):
            resolve_scale("huge")


class TestAnalyticExperiments:
    """The cheap drivers run at full fidelity in unit tests."""

    def test_table1(self):
        result = run_experiment("table1")
        assert len(result.rows) == 7

    def test_fig5_counts(self):
        result = run_experiment("fig5")
        assert result.single(output="TOTAL")["removed_by_depop"] == 16

    def test_table2_ordering(self):
        result = run_experiment("table2")
        totals = {r["config"]: r["total_um2"] for r in result.rows}
        assert totals["ruche2-depop"] < totals["ruche2-pop"]

    def test_table3_rows(self):
        result = run_experiment("table3")
        assert len(result.rows) == 10  # 4 + 4 + 2 directions

    def test_table4_guideline(self):
        result = run_experiment("table4")
        assert result.single(
            network_size="32x8", noc="ruche3-depop"
        )["meets_guideline"]

    def test_fig7(self):
        result = run_experiment("fig7", scale="smoke")
        row = {r["config"]: r for r in result.rows}
        assert row["torus"]["min_cycle_fo4"] > row["mesh"]["min_cycle_fo4"]


class TestSimulationExperimentsSmoke:
    """Each simulation-backed driver completes at smoke scale."""

    def test_fig6_smoke(self):
        result = run_experiment("fig6", scale="smoke")
        assert {r["config"] for r in result.rows} >= {"mesh", "torus"}
        sats = {r["config"]: r["saturation_throughput"] for r in result.rows}
        assert sats["mesh"] < sats["ruche1"]

    def test_fig9_smoke(self):
        result = run_experiment("fig9", scale="smoke")
        assert all(r["saturation_throughput"] > 0 for r in result.rows)

    def test_fig8_smoke(self):
        result = run_experiment("fig8", scale="smoke")
        rows = {r["config"]: r for r in result.rows}
        assert rows["mesh"]["stddev"] > rows["torus"]["stddev"]

    def test_manycore_chain_smoke(self):
        fig10 = run_experiment("fig10", scale="smoke")
        geo = fig10.lookup(benchmark="GEOMEAN")
        assert len(geo) == 6
        fig12 = run_experiment("fig12", scale="smoke")
        assert all(r["total"] >= r["intrinsic"] for r in fig12.rows)
        fig13 = run_experiment("fig13", scale="smoke")
        assert all(r["total_vs_mesh"] > 0 for r in fig13.rows)
        table6 = run_experiment("table6", scale="smoke")
        assert table6.single(config="mesh")["speedup_vs_mesh"] == 1.0

    def test_fig11_smoke(self):
        result = run_experiment("fig11", scale="smoke")
        assert all(0 < r["scalability"] < 5 for r in result.rows)


class TestCli:
    def test_main_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table6" in out

    def test_main_list_topologies(self, capsys):
        # Registry menus print from registration metadata alone — no
        # config or topology construction — with aliases inline.
        from repro.experiments.__main__ import main

        assert main(["--list-topologies"]) == 0
        out = capsys.readouterr().out
        for family in ("mesh", "torus", "ruche", "mesh3d", "torus3d"):
            assert family in out
        assert "[aliases: mesh-3d]" in out
        assert "depth option sets layers" in out

    def test_main_list_other_registries(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list-routings", "--list-engines"]) == 0
        out = capsys.readouterr().out
        assert "mesh3d-dor" in out and "torus3d-dor" in out
        assert "compiled" in out and "reference" in out

    def test_main_list_patterns_routers_allocators(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list-patterns"]) == 0
        assert "uniform_random" in capsys.readouterr().out
        assert main(["--list-routers"]) == 0
        assert "fbfc" in capsys.readouterr().out
        assert main(["--list-allocators"]) == 0
        assert capsys.readouterr().out.strip()

    def test_main_runs_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        assert "Physical scalability" in capsys.readouterr().out

    def test_report_file(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_file = tmp_path / "report.md"
        assert main(["table1", "--output", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# Ruche Networks reproduction report" in text
        assert "table1" in text and "```" in text

    def test_write_report_multiple(self, tmp_path):
        from repro.experiments.report import write_report

        path = write_report(
            tmp_path / "r.md", ids=["table1", "fig5"], scale="smoke"
        )
        text = path.read_text()
        assert "## table1" in text and "## fig5" in text


class TestWatchdogOption:
    """``--watchdog-cycles`` threads end-to-end: CLI -> registry ->
    campaign drivers -> ``WatchdogConfig(stall_window=...)``."""

    def test_campaign_drivers_accept_watchdog_cycles(self):
        import inspect

        from repro import chaos
        from repro.experiments import fault_degradation

        for driver in (fault_degradation.run, chaos.run):
            parameters = inspect.signature(driver).parameters
            assert "watchdog_cycles" in parameters
            assert "engine" in parameters

    def test_option_skipped_for_drivers_without_it(self):
        # table1 has no watchdog; the registry filters the option out
        # instead of crashing an `--watchdog-cycles` all-run.
        result = run_experiment("table1", watchdog_cycles=123)
        assert result.experiment_id == "table1"

    def test_cli_flag_reaches_the_driver(self, capsys, monkeypatch):
        from repro.experiments import registry
        from repro.experiments.__main__ import main

        seen = {}
        real = registry.run_experiment

        def spy(experiment_id, scale=None, seed=0, **options):
            seen.update(options, experiment_id=experiment_id)
            return real(experiment_id, scale=scale, seed=seed, **options)

        monkeypatch.setattr(
            "repro.experiments.__main__.run_experiment", spy
        )
        assert main([
            "faults", "--scale", "smoke", "--watchdog-cycles", "400",
        ]) == 0
        assert seen["watchdog_cycles"] == 400
        assert seen["experiment_id"] == "faults"
        capsys.readouterr()


class TestMainFailurePath:
    def test_failing_driver_exits_nonzero(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["fig99", "--scale", "smoke"])
        assert code == 1
        err = capsys.readouterr().err
        assert "fig99" in err and "FAILED" in err

    def test_unknown_experiment_prints_menu(self, capsys):
        """A typo'd id fails with every available id + description."""
        from repro.experiments.__main__ import main
        from repro.experiments.registry import describe, experiment_ids

        code = main(["nosuch"])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown experiment 'nosuch'" in err
        for exp_id in experiment_ids():
            assert exp_id in err
            assert describe(exp_id) in err

    def test_successful_driver_exits_zero(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["fig5", "--scale", "smoke"])
        assert code == 0
        assert "[fig5]" in capsys.readouterr().out
