"""IPOLY interleaving tests (balance, determinism, ablation contrast)."""

import pytest
from hypothesis import given, strategies as st

from property.settings import tiered_settings

from repro.errors import ConfigError
from repro.manycore.ipoly import IRREDUCIBLE_POLYS, ipoly_hash, modulo_hash


class TestIpolyBasics:
    @pytest.mark.parametrize("banks", [2, 4, 8, 16, 32, 64, 128])
    def test_result_in_range(self, banks):
        for addr in list(range(200)) + [10**6, 2**31 - 1]:
            assert 0 <= ipoly_hash(addr, banks) < banks

    def test_deterministic(self):
        assert ipoly_hash(123456, 32) == ipoly_hash(123456, 32)

    def test_single_bank(self):
        assert ipoly_hash(999, 1) == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            ipoly_hash(1, 24)

    def test_rejects_negative_address(self):
        with pytest.raises(ConfigError):
            ipoly_hash(-1, 8)
        with pytest.raises(ConfigError):
            modulo_hash(-1, 8)

    def test_gf2_linearity(self):
        """IPOLY is linear over GF(2): h(a ^ b) == h(a) ^ h(b)."""
        for a, b in [(5, 9), (100, 3000), (2**20, 77)]:
            assert ipoly_hash(a ^ b, 32) == (
                ipoly_hash(a, 32) ^ ipoly_hash(b, 32)
            )


class TestBalance:
    def test_sequential_addresses_balanced(self):
        banks = 32
        counts = [0] * banks
        for addr in range(32 * 64):
            counts[ipoly_hash(addr, banks)] += 1
        assert max(counts) - min(counts) <= 2

    @pytest.mark.parametrize("stride", [3, 7, 32, 64, 96, 1024])
    def test_strided_addresses_balanced(self, stride):
        """The reason the paper uses IPOLY: strides spread uniformly."""
        banks = 32
        counts = [0] * banks
        for i in range(banks * 32):
            counts[ipoly_hash(i * stride, banks)] += 1
        assert min(counts) > 0
        assert max(counts) < 4 * (banks * 32) // banks

    def test_modulo_fails_on_bank_multiple_stride(self):
        """Ablation contrast: modulo interleaving collapses onto one bank
        for strides that are bank-count multiples; IPOLY does not."""
        banks = 32
        mod_banks_hit = {modulo_hash(i * banks, banks) for i in range(100)}
        ipoly_banks_hit = {ipoly_hash(i * banks, banks) for i in range(100)}
        assert len(mod_banks_hit) == 1
        assert len(ipoly_banks_hit) > banks // 2

    @given(st.integers(0, 2**40), st.sampled_from([2, 4, 8, 16, 32, 64]))
    @tiered_settings(300)
    def test_range_property(self, addr, banks):
        assert 0 <= ipoly_hash(addr, banks) < banks


class TestPolynomials:
    @pytest.mark.parametrize("degree, poly", sorted(IRREDUCIBLE_POLYS.items()))
    def test_polynomials_have_declared_degree(self, degree, poly):
        assert poly.bit_length() == degree + 1

    @pytest.mark.parametrize("degree, poly", sorted(IRREDUCIBLE_POLYS.items()))
    def test_polynomials_are_irreducible(self, degree, poly):
        """Brute-force GF(2) irreducibility check."""

        def gf2_mod(a, b):
            while a.bit_length() >= b.bit_length():
                a ^= b << (a.bit_length() - b.bit_length())
            return a

        for candidate in range(2, 1 << ((degree // 2) + 1)):
            if candidate.bit_length() <= 1:
                continue
            if gf2_mod(poly, candidate) == 0 and candidate != poly:
                pytest.fail(
                    f"x^{degree} poly {bin(poly)} divisible by "
                    f"{bin(candidate)}"
                )
