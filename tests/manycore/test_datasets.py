"""Synthetic dataset tests: each graph class shows its Table 5 character."""

import pytest

from repro.manycore.datasets import (
    graph_codes,
    load_graph,
    road_graph,
    scientific_graph,
    social_graph,
)


class TestRoadGraphs:
    def test_low_average_degree(self):
        g = road_graph(2048, seed=1)
        assert 1.5 < g.average_degree() < 3.5

    def test_no_heavy_hubs(self):
        g = road_graph(2048, seed=1)
        assert g.max_degree() <= 8

    def test_high_diameter(self):
        """Road networks: BFS needs many levels (latency-bound class)."""
        g = road_graph(1024, seed=1)
        levels = g.bfs_levels(0)
        assert len(levels) > 15

    def test_connected_from_root(self):
        g = road_graph(1024, seed=2)
        reached = sum(len(lv) for lv in g.bfs_levels(0))
        assert reached == g.num_vertices


class TestSocialGraphs:
    def test_power_law_hubs(self):
        g = social_graph(1500, seed=2, m=8)
        assert g.max_degree() > 8 * g.average_degree() / 2
        assert g.max_degree() > 50

    def test_small_diameter(self):
        g = social_graph(1500, seed=2, m=8)
        assert len(g.bfs_levels(0)) <= 6

    def test_average_degree_near_2m(self):
        g = social_graph(2000, seed=3, m=10)
        assert 15 < g.average_degree() < 25


class TestScientificGraphs:
    def test_regular_degree(self):
        g = scientific_graph(3375, seed=1)
        assert g.max_degree() == 6
        assert 4.5 < g.average_degree() <= 6

    def test_moderate_diameter(self):
        g = scientific_graph(3375)
        side = round(g.num_vertices ** (1 / 3))
        assert len(g.bfs_levels(0)) == pytest.approx(3 * side - 2, abs=2)


class TestRegistry:
    def test_all_table5_codes_present(self):
        assert set(graph_codes()) == {"OS", "CA", "RC", "US", "LJ", "HW", "PK"}

    @pytest.mark.parametrize("code", ["OS", "CA", "LJ"])
    def test_load_graph_kind(self, code):
        kinds = {"OS": "scientific", "CA": "road", "LJ": "social"}
        assert load_graph(code).kind == kinds[code]

    def test_graphs_cached(self):
        assert load_graph("CA") is load_graph("ca")

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            load_graph("XX")

    def test_adjacency_is_symmetric_and_deduped(self):
        g = load_graph("PK")
        for v, adj in enumerate(g.adjacency[:200]):
            assert len(adj) == len(set(adj))
            for u in adj:
                assert v in g.adjacency[u]
