"""Unit tests for the core state machine and memory-side endpoints."""

import pytest

from repro.core.coords import Coord
from repro.manycore.core_model import Core, Request
from repro.manycore.memory import MemoryTile, ScratchpadServer
from repro.sim.packet import Packet


class FakeMachine:
    """Minimal machine stub for isolated core tests."""

    def __init__(self, window=2, accept=True):
        class Cfg:
            pass

        self.config = Cfg()
        self.config.window = window
        self.config.height = 4
        self._accept = accept
        self.issued = []
        self.finished = 0

    def llc_coord(self, addr):
        return Coord(addr % 4, -1)

    def try_issue(self, core, kind, dest, cycle):
        if not self._accept:
            return False
        self.issued.append((kind, dest, cycle))
        return True

    def barrier_arrive(self, core):
        pass

    def barrier_released(self, core):
        return True

    def core_finished(self):
        self.finished += 1


def make_core(ops, machine=None):
    machine = machine or FakeMachine()
    return Core(Coord(0, 0), iter(ops), machine), machine


class TestCore:
    def test_compute_busy_for_n_cycles(self):
        core, m = make_core([("compute", 3)])
        for cycle in range(3):
            core.step(cycle)
            assert not core.done
        assert core.stats.compute_cycles == 3
        core.step(3)
        assert core.done
        assert m.finished == 1

    def test_load_issues_and_occupies_window(self):
        core, m = make_core([("load", 7)])
        core.step(0)
        assert m.issued == [("load", Coord(3, -1), 0)]
        assert core.outstanding == 1

    def test_window_full_stalls(self):
        core, m = make_core([("load", i) for i in range(4)],
                            FakeMachine(window=2))
        core.step(0)
        core.step(1)
        assert core.outstanding == 2
        core.step(2)
        assert core.outstanding == 2  # stalled
        assert core.stats.stall_mem == 1

    def test_network_backpressure_counts_stall_net(self):
        core, m = make_core([("load", 1)], FakeMachine(accept=False))
        core.step(0)
        core.step(1)
        assert core.stats.stall_net == 2
        assert core.outstanding == 0

    def test_fence_waits_for_responses(self):
        core, m = make_core([("load", 1), ("fence",), ("compute", 1)])
        core.step(0)  # issue load
        core.step(1)  # fence: blocked
        assert core.stats.stall_mem == 1
        core.receive(Request("load", Coord(0, 0), 0, 4), 5)
        core.step(6)  # fence clears, same-cycle fallthrough to compute
        assert core.stats.compute_cycles >= 1

    def test_tload_targets_tile(self):
        core, m = make_core([("tload", (2, 3), 9)])
        core.step(0)
        assert m.issued == [("load", Coord(2, 3), 0)]

    def test_drains_outstanding_before_done(self):
        core, m = make_core([("load", 1)])
        core.step(0)
        core.step(1)
        assert not core.done
        core.receive(Request("load", Coord(0, 0), 0, 4), 2)
        core.step(3)
        assert core.done

    def test_latency_accounting(self):
        core, m = make_core([])
        req = Request("load", Coord(0, 0), issue_cycle=10, intrinsic=6)
        core.outstanding = 1
        core.receive(req, 25)
        assert core.stats.latency_total == 15
        assert core.stats.intrinsic_total == 6

    def test_unknown_op_raises(self):
        core, m = make_core([("teleport", 1)])
        with pytest.raises(ValueError):
            core.step(0)


def mem_packet(kind="load"):
    req = Request(kind, Coord(0, 0), 0, 4)
    return Packet(0, Coord(0, 0), Coord(1, -1), 0, payload=req)


class TestMemoryTile:
    def test_serves_one_per_cycle_with_latency(self):
        mem = MemoryTile(Coord(1, -1), capacity=4, mem_latency=2,
                         amo_service=4)
        mem.deliver(mem_packet(), 0)
        mem.serve(0)
        assert mem.pending_response(1) is None
        assert mem.pending_response(2) is not None

    def test_amo_occupies_bank(self):
        mem = MemoryTile(Coord(1, -1), capacity=4, mem_latency=2,
                         amo_service=4)
        mem.deliver(mem_packet("amo"), 0)
        mem.deliver(mem_packet("load"), 0)
        mem.serve(0)       # amo: busy until cycle 4
        mem.serve(1)
        assert len(mem.inbox) == 1  # load still queued behind the amo
        mem.serve(4)
        assert len(mem.inbox) == 0

    def test_backpressure_when_inbox_full(self):
        mem = MemoryTile(Coord(1, -1), capacity=2, mem_latency=1,
                         amo_service=2)
        mem.deliver(mem_packet(), 0)
        mem.deliver(mem_packet(), 0)
        assert not mem.ready()

    def test_served_counter(self):
        mem = MemoryTile(Coord(1, -1), capacity=4, mem_latency=1,
                         amo_service=2)
        for _ in range(3):
            mem.deliver(mem_packet(), 0)
        for cycle in range(5):
            mem.serve(cycle)
        assert mem.served == 3


class TestScratchpadServer:
    def test_single_cycle_service(self):
        srv = ScratchpadServer(Coord(2, 2), capacity=2)
        srv.deliver(mem_packet(), 0)
        srv.serve(0)
        assert srv.pending_response(1) is not None
        assert srv.pop_response() is not None
        assert not srv.outbox
