"""Kernel op-stream tests: well-formedness, coverage, traffic character."""

import pytest

from repro.core.coords import Coord
from repro.errors import WorkloadError
from repro.manycore import MachineConfig, benchmark_names, build_workload
from repro.manycore.kernels import quick_suite, workload_classes

MCFG = MachineConfig(width=8, height=4)

VALID_OPS = {"compute", "load", "store", "amo", "tload", "tstore",
             "fence", "barrier"}


def ops_of(workload, coord):
    return list(workload[coord])


class TestWellFormedness:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_all_benchmarks_build_and_emit_valid_ops(self, name):
        workload = build_workload(name, MCFG)
        assert len(workload) == MCFG.num_cores
        ops = ops_of(workload, Coord(0, 0))
        assert ops, f"{name} emits no work for core (0,0)"
        for op in ops:
            assert op[0] in VALID_OPS, op
            if op[0] == "compute":
                assert op[1] >= 1
            if op[0] in ("load", "store", "amo"):
                assert op[1] >= 0
            if op[0] in ("tload", "tstore"):
                (x, y) = op[1]
                assert 0 <= x < MCFG.width and 0 <= y < MCFG.height

    @pytest.mark.parametrize("name", ["jacobi", "fft", "sgemm"])
    def test_barrier_counts_match_across_cores(self, name):
        """Every core must hit the same number of barriers or the sense
        barrier deadlocks."""
        workload = build_workload(name, MCFG)
        counts = {
            coord: sum(1 for op in stream if op[0] == "barrier")
            for coord, stream in workload.items()
        }
        assert len(set(counts.values())) == 1

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("matmul9000", MCFG)

    def test_registry_consistency(self):
        assert set(quick_suite()) <= set(benchmark_names())
        assert set(workload_classes()) == set(benchmark_names())


class TestTrafficCharacter:
    def test_jacobi_uses_neighbor_scratchpads(self):
        ops = ops_of(build_workload("jacobi", MCFG), Coord(3, 2))
        tloads = [op for op in ops if op[0] == "tload"]
        assert tloads
        for op in tloads:
            dest = Coord(*op[1])
            assert Coord(3, 2).manhattan(dest) == 1

    def test_sgemm_is_streaming_loads(self):
        ops = ops_of(build_workload("sgemm", MCFG), Coord(0, 0))
        loads = [op for op in ops if op[0] == "load"]
        fences = [op for op in ops if op[0] == "fence"]
        assert len(loads) > 8 * len(fences)  # long un-fenced streams

    def test_bh_is_dependent_chain(self):
        ops = ops_of(
            build_workload("bh", MCFG, bodies_per_core=2, walk_depth=4),
            Coord(0, 0),
        )
        loads = sum(1 for op in ops if op[0] == "load")
        fences = sum(1 for op in ops if op[0] == "fence")
        assert fences >= loads  # every load is use-dependent

    def test_spgemm_hits_single_amo_address(self):
        from repro.manycore.kernels.spgemm import ALLOC_ADDR

        ops = ops_of(
            build_workload("spgemm-CA", MCFG, rows_per_core=2), Coord(1, 1)
        )
        amos = {op[1] for op in ops if op[0] == "amo"}
        assert amos == {ALLOC_ADDR}

    def test_bfs_social_is_imbalanced_within_levels(self):
        """Hub vertices concentrate a level's work on few cores; the
        barrier then stalls everyone on the slowest core (Section 4.7's
        load-imbalance explanation for BFS scalability)."""
        from repro.manycore.datasets import load_graph

        g = load_graph("HW")
        n_cores = MachineConfig(width=16, height=8).num_cores
        worst_ratio = 0.0
        for frontier in g.bfs_levels(0)[:4]:
            work = [0] * n_cores
            for v in frontier:
                work[v % n_cores] += max(1, len(g.adjacency[v]))
            mean = sum(work) / n_cores
            if mean:
                worst_ratio = max(worst_ratio, max(work) / mean)
        assert worst_ratio > 3.0

    def test_fft_has_transpose_phase(self):
        ops = ops_of(build_workload("fft", MCFG), Coord(5, 1))
        tstores = [op for op in ops if op[0] == "tstore"]
        assert tstores
        dests = {Coord(*op[1]) for op in tstores}
        # The transpose partner is generally not a neighbour.
        assert any(Coord(5, 1).manhattan(d) > 1 for d in dests)

    def test_pagerank_budget_caps_edges(self):
        workload = build_workload("pr-PK", MCFG, max_edges_per_core=50)
        loads = sum(1 for op in ops_of(workload, Coord(0, 0))
                    if op[0] == "load")
        assert loads <= 51
