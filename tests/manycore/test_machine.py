"""End-to-end manycore tests: completion, conservation, feedback effects."""

import pytest

from repro.core.coords import Coord
from repro.errors import ConfigError
from repro.manycore import (
    Machine,
    MachineConfig,
    build_workload,
    run_benchmark,
    system_energy,
)
from repro.manycore.kernels.base import physical_to_network, ring_index


def small_cfg(network="mesh", **kw):
    return MachineConfig(network=network, width=8, height=4, **kw)


def run_small(benchmark, network="mesh", **params):
    mcfg = small_cfg(network)
    workload = build_workload(benchmark, mcfg, **params)
    return Machine(mcfg, workload).run(max_cycles=400_000)


class TestMachineConfig:
    def test_memory_layout(self):
        cfg = MachineConfig(width=16, height=8)
        assert cfg.num_memory_tiles == 32
        assert cfg.compute_to_memory_ratio() == 4.0
        assert Coord(0, -1) in cfg.memory_coords()
        assert Coord(15, 8) in cfg.memory_coords()

    def test_networks_have_opposite_dor(self):
        cfg = MachineConfig(network="ruche2-depop")
        assert cfg.forward_config.dor_order.value == "xy"
        assert cfg.reverse_config.dor_order.value == "yx"
        assert cfg.forward_config.edge_memory

    def test_invalid_fabrics_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(network="torus")
        with pytest.raises(ConfigError):
            MachineConfig(network="multimesh")

    def test_fbfc_half_torus_fabric(self):
        """The VC-free half-torus also works as a manycore fabric."""
        stats = run_small("sgemm", "half-torus-fbfc", k_panels=2)
        assert stats.completed


class TestExecution:
    @pytest.mark.parametrize("network", ["mesh", "ruche2-depop", "half-torus"])
    def test_jacobi_completes(self, network):
        stats = run_small("jacobi", network, iterations=2)
        assert stats.completed
        assert stats.instructions > 0

    def test_requests_conserved(self):
        """Every issued request is served exactly once and answered."""
        mcfg = small_cfg()
        machine = Machine(mcfg, build_workload("sgemm", mcfg, k_panels=2))
        stats = machine.run()
        assert stats.completed
        assert stats.requests_served == stats.loads_completed
        assert machine.fwd.occupancy == 0
        assert machine.rev.occupancy == 0

    def test_deterministic(self):
        a = run_small("sgemm", k_panels=2)
        b = run_small("sgemm", k_panels=2)
        assert a.cycles == b.cycles
        assert a.latency_total == b.latency_total

    def test_congestion_latency_non_negative(self):
        stats = run_small("sgemm")
        assert stats.avg_load_latency >= stats.avg_intrinsic_latency

    def test_barrier_synchronizes_all_cores(self):
        """Jacobi iterates in lockstep; a deadlocked barrier would trip
        the progress watchdog."""
        stats = run_small("jacobi", iterations=3)
        assert stats.completed
        assert stats.stall_barrier > 0

    def test_run_benchmark_convenience(self):
        stats = run_benchmark("bh", "mesh", 8, 4, bodies_per_core=2,
                              walk_depth=3)
        assert stats.completed


class TestPaperEffects:
    def test_ruche_speeds_up_streaming(self):
        mesh = run_small("sgemm")
        ruche = run_small("sgemm", "ruche2-depop")
        assert ruche.cycles < mesh.cycles

    def test_ruche_reduces_intrinsic_latency(self):
        mesh = run_small("sgemm")
        ruche = run_small("sgemm", "ruche3-depop")
        assert ruche.avg_intrinsic_latency < mesh.avg_intrinsic_latency

    def test_spgemm_hotspot_immune_to_ruche(self):
        """Section 4.6: the single-variable atomic hotspot limits SpGEMM
        gains to a few percent."""
        mesh = run_small("spgemm-CA", rows_per_core=2)
        ruche = run_small("spgemm-CA", "ruche3-pop", rows_per_core=2)
        assert ruche.cycles > 0.9 * mesh.cycles

    def test_spgemm_congestion_dominated(self):
        stats = run_small("spgemm-CA", rows_per_core=2)
        assert stats.avg_congestion_latency > stats.avg_intrinsic_latency

    def test_folded_torus_ring_mapping(self):
        """Physically adjacent middle tiles are ring-distant (Jacobi)."""
        assert ring_index(0, 8) == 0
        assert ring_index(2, 8) == 1
        assert ring_index(7, 8) == 4
        assert ring_index(1, 8) == 7
        mid_a, mid_b = ring_index(3, 8), ring_index(4, 8)
        assert min(abs(mid_a - mid_b), 8 - abs(mid_a - mid_b)) == 4

    def test_physical_to_network_identity_on_mesh(self):
        cfg = small_cfg()
        assert physical_to_network(cfg, Coord(3, 2)) == Coord(3, 2)

    def test_physical_to_network_folds_on_torus(self):
        cfg = small_cfg("half-torus")
        assert physical_to_network(cfg, Coord(4, 2)) == Coord(2, 2)


class TestHashingAblation:
    def test_modulo_hashing_hurts_strided_workloads(self):
        """IPOLY balances SGEMM's strided panels across banks; plain
        modulo interleaving concentrates them."""
        mcfg = small_cfg()
        ipoly = Machine(
            mcfg, build_workload("sgemm", mcfg), hash_fn="ipoly"
        ).run()
        modulo = Machine(
            mcfg, build_workload("sgemm", mcfg), hash_fn="modulo"
        ).run()
        # Not asserting a direction for runtime (pattern-dependent), but
        # both must complete and IPOLY must spread the banks.
        assert ipoly.completed and modulo.completed

    def test_llc_coord_uses_selected_hash(self):
        mcfg = small_cfg()
        m_ipoly = Machine(mcfg, {}, hash_fn="ipoly")
        m_mod = Machine(mcfg, {}, hash_fn="modulo")
        coords_ipoly = {m_ipoly.llc_coord(a) for a in range(0, 256, 16)}
        coords_mod = {m_mod.llc_coord(a) for a in range(0, 256, 16)}
        assert len(coords_ipoly) > len(coords_mod)


class TestEnergyAccounting:
    def test_breakdown_positive_and_consistent(self):
        mcfg = small_cfg("ruche2-depop")
        machine = Machine(mcfg, build_workload("sgemm", mcfg))
        stats = machine.run()
        energy = system_energy(stats, mcfg)
        assert energy.core > 0 and energy.router > 0
        assert energy.wire > 0  # Ruche links carry traffic
        assert energy.total == pytest.approx(
            energy.core + energy.stall + energy.router + energy.wire
        )

    def test_mesh_has_no_wire_energy(self):
        mcfg = small_cfg()
        stats = Machine(mcfg, build_workload("sgemm", mcfg)).run()
        assert system_energy(stats, mcfg).wire == 0.0

    def test_half_torus_router_energy_exceeds_mesh(self):
        """Figure 13: torus routers cost more energy per traversal."""
        mesh_cfg = small_cfg()
        torus_cfg = small_cfg("half-torus")
        mesh = Machine(mesh_cfg, build_workload("sgemm", mesh_cfg)).run()
        torus = Machine(torus_cfg, build_workload("sgemm", torus_cfg)).run()
        mesh_e = system_energy(mesh, mesh_cfg)
        torus_e = system_energy(torus, torus_cfg)
        mesh_hops = sum(mesh.fwd_hop_counts) + sum(mesh.rev_hop_counts)
        torus_hops = sum(torus.fwd_hop_counts) + sum(torus.rev_hop_counts)
        assert (
            torus_e.router / torus_hops > mesh_e.router / mesh_hops
        )
