"""Unit tests for cross-run statistics and energy arithmetic."""

import math

import pytest

from repro.manycore.energy import EnergyBreakdown
from repro.manycore.machine import MachineStats
from repro.manycore.stats import (
    area_normalized_speedup,
    energy_efficiency,
    geomean,
    geomean_speedups,
    latency_reduction,
    scalability,
    speedup,
    stall_breakdown,
)


def stats_with(cycles=1000, lat=20, intr=10, loads=100, **kw):
    defaults = dict(
        cycles=cycles,
        completed=True,
        instructions=5000,
        compute_cycles=4000,
        stall_mem=600,
        stall_net=100,
        stall_barrier=300,
        loads_completed=loads,
        latency_total=lat * loads,
        intrinsic_total=intr * loads,
        fwd_hop_counts=[0] * 9,
        rev_hop_counts=[0] * 9,
        requests_served=loads,
    )
    defaults.update(kw)
    return MachineStats(**defaults)


class TestMachineStats:
    def test_latency_decomposition(self):
        s = stats_with(lat=24, intr=10)
        assert s.avg_load_latency == 24
        assert s.avg_intrinsic_latency == 10
        assert s.avg_congestion_latency == 14

    def test_no_loads_yields_nan(self):
        s = stats_with(loads=0)
        assert math.isnan(s.avg_load_latency)

    def test_stall_cycles_sum(self):
        assert stats_with().stall_cycles == 1000


class TestSpeedupMath:
    def test_speedup(self):
        assert speedup(stats_with(cycles=2000), stats_with(cycles=1000)) == 2

    def test_scalability_weak_scaling(self):
        # 4x work at equal runtime = ideal 4x scalability.
        base = stats_with(cycles=1000)
        big = stats_with(cycles=1000)
        assert scalability(base, big, work_ratio=4.0) == 4.0
        slower = stats_with(cycles=2000)
        assert scalability(base, slower, 4.0) == 2.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert math.isnan(geomean([]))
        assert geomean([2.0, float("nan"), 8.0]) == pytest.approx(4.0)

    def test_geomean_speedups_aligns_by_name(self):
        base = {"a": stats_with(cycles=1000), "b": stats_with(cycles=1000)}
        cand = {"a": stats_with(cycles=500), "b": stats_with(cycles=2000)}
        assert geomean_speedups(base, cand) == pytest.approx(1.0)

    def test_latency_reduction_components(self):
        base = stats_with(lat=30, intr=15)
        better = stats_with(lat=20, intr=10)
        assert latency_reduction(base, better, "total") == 1.5
        assert latency_reduction(base, better, "intrinsic") == 1.5
        congestion = latency_reduction(base, better, "congestion")
        assert congestion == pytest.approx(15 / 10)

    def test_area_normalized(self):
        assert area_normalized_speedup(1.2, 1.06) == pytest.approx(
            1.2 / 1.06
        )

    def test_stall_breakdown_fractions(self):
        shares = stall_breakdown(stats_with())
        assert shares["memory"] == 0.6
        assert sum(shares.values()) == pytest.approx(1.0)


class TestEnergyBreakdown:
    def test_totals_and_noc(self):
        e = EnergyBreakdown(core=10, stall=5, router=3, wire=1)
        assert e.total == 19
        assert e.noc == 4

    def test_normalization(self):
        mesh = EnergyBreakdown(core=10, stall=5, router=4, wire=0)
        ruche = EnergyBreakdown(core=10, stall=4, router=3, wire=0.5)
        norm = ruche.normalized_to(mesh)
        assert norm["total"] == pytest.approx(17.5 / 19)
        assert norm["core"] == pytest.approx(10 / 19)

    def test_efficiency_components(self):
        mesh = EnergyBreakdown(core=10, stall=5, router=4, wire=0)
        ruche = EnergyBreakdown(core=10, stall=4, router=2, wire=1)
        assert energy_efficiency(mesh, ruche, "noc") == pytest.approx(4 / 3)
        assert energy_efficiency(mesh, ruche, "compute") == pytest.approx(
            15 / 14
        )
        assert energy_efficiency(mesh, ruche, "total") == pytest.approx(
            19 / 17
        )

    def test_breakdown_is_immutable(self):
        e = EnergyBreakdown(1, 1, 1, 1)
        with pytest.raises(Exception):
            e.core = 5
