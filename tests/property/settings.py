"""Hypothesis intensity tiers for the property-based suites.

Every property test declares its example budget through
:func:`tiered_settings` instead of a hard-coded ``max_examples``.  The
default ``fast`` tier keeps the counts the suite has always run with
(CI wall-clock is unchanged); setting ``REPRO_TEST_INTENSITY=full``
multiplies every budget by :data:`FULL_MULTIPLIER` (or uses a per-site
``full`` override) for scheduled deep runs::

    REPRO_TEST_INTENSITY=full python -m pytest tests/

The tier is read once per call site at import time, so it must be set
in the environment before pytest starts, not monkeypatched per test.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from hypothesis import settings

#: Recognized ``REPRO_TEST_INTENSITY`` values.
TIERS = ("fast", "full")

#: Example-count multiplier of the ``full`` tier, applied where a call
#: site does not pass an explicit ``full`` budget.
FULL_MULTIPLIER = 10


def intensity() -> str:
    """The active tier: ``fast`` (default) or ``full``."""
    tier = os.environ.get("REPRO_TEST_INTENSITY", "fast")
    if tier not in TIERS:
        raise ValueError(
            f"REPRO_TEST_INTENSITY={tier!r}; expected one of {TIERS}"
        )
    return tier


def max_examples(fast: int, full: Optional[int] = None) -> int:
    """The example budget for the active tier."""
    if intensity() == "full":
        return full if full is not None else fast * FULL_MULTIPLIER
    return fast


def tiered_settings(
    fast: int, full: Optional[int] = None, **kwargs: Any
) -> settings:
    """A Hypothesis ``@settings`` scaled by the intensity tier.

    ``fast`` is the default-tier example count (what CI runs every
    push); ``full`` optionally pins the deep-run count where a plain
    x10 would be too slow.  All other keyword arguments pass through
    to :class:`hypothesis.settings` unchanged.
    """
    return settings(max_examples=max_examples(fast, full), **kwargs)
