"""The Hypothesis intensity-tier helpers themselves."""

import pytest

from property.settings import (
    FULL_MULTIPLIER,
    intensity,
    max_examples,
    tiered_settings,
)


class TestTiers:
    def test_fast_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INTENSITY", raising=False)
        assert intensity() == "fast"
        assert max_examples(25) == 25

    def test_full_scales_examples(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INTENSITY", "full")
        assert intensity() == "full"
        assert max_examples(25) == 25 * FULL_MULTIPLIER
        assert max_examples(25, full=40) == 40

    def test_unknown_tier_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INTENSITY", "extreme")
        with pytest.raises(ValueError, match="extreme"):
            intensity()

    def test_tiered_settings_builds_hypothesis_settings(
        self, monkeypatch
    ):
        monkeypatch.delenv("REPRO_TEST_INTENSITY", raising=False)
        s = tiered_settings(12, deadline=None)
        assert s.max_examples == 12
        assert s.deadline is None
