"""Tests for sweeps, bandwidth, fairness and table rendering."""

import pytest

from repro.analysis.bandwidth import (
    bandwidth_row,
    minimum_rf_to_match_memory,
    table4,
)
from repro.analysis.fairness import FairnessSummary, summarize_per_tile
from repro.analysis.sweeps import (
    compare_saturation,
    curve_summary,
    saturation_offered_load,
    saturation_throughput,
    zero_load_point,
)
from repro.analysis.tables import format_value, render_table
from repro.core.coords import Coord
from repro.core.params import NetworkConfig
from repro.sim.simulator import RunResult


def fake_point(rate, accepted, latency, drained=True):
    return RunResult(
        config_name="mesh",
        pattern="uniform_random",
        offered_load=rate,
        accepted_throughput=accepted,
        avg_latency=latency,
        stddev_latency=0.0,
        max_latency=latency,
        delivered_measured=100,
        injected_measured=100,
        drained=drained,
        measure_cycles=100,
        avg_hops=5.0,
    )


CURVE = [
    fake_point(0.05, 0.05, 6.0),
    fake_point(0.15, 0.15, 7.0),
    fake_point(0.30, 0.28, 25.0),
    fake_point(0.45, 0.29, 80.0, drained=False),
    fake_point(0.60, 0.26, 200.0, drained=False),
]


class TestSweeps:
    def test_saturation_is_max_accepted(self):
        assert saturation_throughput(CURVE) == 0.29

    def test_zero_load_point(self):
        assert zero_load_point(CURVE).offered_load == 0.05

    def test_knee_detection(self):
        assert saturation_offered_load(CURVE) == 0.30

    def test_knee_none_when_never_saturating(self):
        flat = [fake_point(r, r, 6.0 + r) for r in (0.05, 0.1, 0.15)]
        assert saturation_offered_load(flat) is None

    def test_curve_summary_fields(self):
        summary = curve_summary(CURVE)
        assert summary["zero_load_latency"] == 6.0
        assert summary["saturation_throughput"] == 0.29
        assert len(summary["points"]) == 5

    def test_compare_saturation(self):
        rows = compare_saturation({"mesh": CURVE, "other": CURVE}, "mesh")
        assert all(r["vs_baseline"] == 1.0 for r in rows)

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            saturation_throughput([])


class TestBandwidth:
    def test_row_fields_for_paper_case(self):
        cfg = NetworkConfig.from_name("ruche2", 16, 8, half=True)
        row = bandwidth_row(cfg)
        assert row.bisection_bw == 48
        assert row.memory_tile_bw == 32
        assert row.meets_guideline
        assert row.compute_memory_ratio == "4:1"
        assert row.aspect_ratio == "2:1"

    def test_table4_shape(self):
        rows = table4()
        assert len(rows) == 12
        assert {r.network_size for r in rows} == {
            "16x8", "32x16", "64x8", "32x8"
        }

    def test_minimum_rf_paper_observations(self):
        assert minimum_rf_to_match_memory(32, 8) == 3
        assert minimum_rf_to_match_memory(64, 8) == 7
        # 16x8: even RF=1 doubles the 16-channel bisection to 32, which
        # already matches the 32-port memory bandwidth.
        assert minimum_rf_to_match_memory(16, 8) == 1

    def test_minimum_rf_none_when_unreachable(self):
        assert minimum_rf_to_match_memory(64, 8, max_rf=3) is None


class TestFairness:
    def test_summary_statistics(self):
        means = {Coord(0, 0): 10.0, Coord(1, 0): 12.0, Coord(2, 0): 14.0}
        summary = summarize_per_tile("mesh", means)
        assert summary.mean == 12.0
        assert summary.min_tile == 10.0 and summary.max_tile == 14.0
        assert summary.spread == 4.0
        assert summary.stddev == pytest.approx((8 / 3) ** 0.5)

    def test_summary_is_frozen_dataclass(self):
        s = FairnessSummary("mesh", 1.0, 0.1, 0.9, 1.1)
        with pytest.raises(Exception):
            s.mean = 2.0


class TestTables:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(None) == "-"
        assert format_value(float("nan")) == "-"
        assert format_value(1234.5) == "1,234"
        assert format_value(0.1234) == "0.123"
        assert format_value(12.34) == "12.3"

    def test_render_table_alignment(self):
        text = render_table(
            [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="T")

    def test_column_subset(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]
