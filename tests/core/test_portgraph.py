"""Port-graph IR unit tests and the registry-wide round-trip property.

The hypothesis property at the bottom is the IR's load-bearing
contract: for *any* registered topology family — 2-D mesh/torus/Ruche,
the 3-D pack, an out-of-tree plugin — the emitted
:class:`~repro.core.portgraph.PortGraph` round-trips through
:func:`~repro.core.routing.tabulate_next_hops` and the chain walk the
compiled engine lowers, with every ``(src, dest)`` pair ejecting at
the right node.  No consumer in that loop touches a coordinate.
"""

import importlib.util
import sys
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from property.settings import tiered_settings

from repro.core.coords import Coord
from repro.core.params import NetworkConfig
from repro.core.portgraph import (
    PortChannel,
    PortGraph,
    ensure_port_graph,
    minimal_distances,
)
from repro.core.registry import TOPOLOGIES
from repro.core.routing import tabulate_next_hops
from repro.core.spec import network_components
from repro.core.topology import make_topology
from repro.errors import RoutingError


def _tiny_graph(**overrides):
    """A two-node, three-port line: a <-> b on port 1/2, eject on 0."""
    a, b = (0, 0), (1, 0)
    fields = dict(
        nodes=(a, b),
        num_ports=3,
        ejection_port=0,
        port_names=("P", "W", "E"),
        channels=(
            PortChannel(a, 2, b, 1, 1, 32),
            PortChannel(b, 1, a, 2, 1, 32),
        ),
    )
    fields.update(overrides)
    return PortGraph(**fields)


class TestPortGraphValidation:
    def test_port_names_arity_checked(self):
        with pytest.raises(ValueError, match="port_names"):
            _tiny_graph(port_names=("P", "W"))

    def test_ejection_port_in_range(self):
        with pytest.raises(ValueError, match="ejection_port"):
            _tiny_graph(ejection_port=3)

    def test_channel_port_ids_in_range(self):
        bad = PortChannel((0, 0), 9, (1, 0), 1, 1, 32)
        with pytest.raises(ValueError, match="out_port out of range"):
            _tiny_graph(channels=(bad,))
        bad = PortChannel((0, 0), 2, (1, 0), 9, 1, 32)
        with pytest.raises(ValueError, match="in_port out of range"):
            _tiny_graph(channels=(bad,))

    def test_latency_floor(self):
        bad = PortChannel((0, 0), 2, (1, 0), 1, 0, 32)
        with pytest.raises(ValueError, match="latency"):
            _tiny_graph(channels=(bad,))

    def test_duplicate_output_rejected(self):
        dup = (
            PortChannel((0, 0), 2, (1, 0), 1, 1, 32),
            PortChannel((0, 0), 2, (1, 0), 1, 2, 32),
        )
        with pytest.raises(ValueError, match="duplicate output"):
            _tiny_graph(channels=dup)


class TestPortGraphQueries:
    def test_out_map_and_queries(self):
        g = _tiny_graph()
        assert g.has_output((0, 0), 2)
        assert not g.has_output((0, 0), 1)
        assert g.dest_of((0, 0), 2) == (1, 0)
        assert g.output_ports((0, 0)) == (2,)
        assert g.output_ports((1, 0)) == (1,)

    def test_port_name_fallback(self):
        g = _tiny_graph()
        assert g.port_name(1) == "W"
        assert g.port_name(9) == "p9"

    def test_render_node(self):
        g = _tiny_graph()
        assert g.render_node((3, 4)) == "(3, 4)"
        assert g.render_node((1, 2, 3)) == "(1, 2, 3)"

    def test_endpoint_only_nodes(self):
        stub = (9, 9)
        g = _tiny_graph(
            channels=(
                PortChannel((0, 0), 2, (1, 0), 1, 1, 32),
                PortChannel((1, 0), 1, stub, 2, 1, 32),
            )
        )
        assert g.endpoint_only_nodes == (stub,)
        # Stubs are channel endpoints, not routable nodes.
        assert stub not in g.nodes


class TestEnsurePortGraph:
    def test_passthrough(self):
        g = _tiny_graph()
        assert ensure_port_graph(g) is g

    def test_topology_emits(self):
        topo = make_topology(NetworkConfig.from_name("mesh", 4, 4))
        g = ensure_port_graph(topo)
        assert isinstance(g, PortGraph)
        assert len(g.nodes) == 16

    def test_rejects_foreign_objects(self):
        with pytest.raises(TypeError, match="port_graph"):
            ensure_port_graph(42)

    def test_rejects_wrong_emitter_return(self):
        class Bad:
            def port_graph(self):
                return "not a graph"

        with pytest.raises(TypeError, match="expected PortGraph"):
            ensure_port_graph(Bad())


#: Golden content addresses of the emitted graphs.  These pin node
#: order, channel order, port naming, and per-channel latency/width —
#: an emitter change that alters any of them (and with it every
#: downstream tie-break) must show up here as a deliberate diff.
GOLDEN_FINGERPRINTS = {
    ("mesh", 8, 8, ()): (
        "8e41982739000c969eefed472e0e76ba"
        "75276985d8b04bd8bacbdfa0aba3545c"
    ),
    ("torus", 8, 8, ()): (
        "6b06b222843be300931a75eefce8b5e4"
        "14a6c8cc28f22a9a047ff51535599f64"
    ),
    ("ruche2-depop", 8, 8, ()): (
        "9d9e799ad9002fd94a3f01400b6e339e"
        "edd9b71f2ee58e8011bb1ee4d3518d1f"
    ),
    ("ruche2-depop", 16, 8, (("half", True),)): (
        "994b20dcbc001f34f2143418d2247c72"
        "4c472aaf777d75097dad3b76a5995c90"
    ),
    ("mesh3d", 4, 4, (("depth", 3),)): (
        "b8a25f33eb75667c996482665abf9fa2"
        "d4ddf3e038e0000636271fcc555059da"
    ),
    ("torus3d", 8, 8, (("depth", 4),)): (
        "dfb3f73a312323f8dbc8ea61cd903ef0"
        "9d9e475a5dce518de810292950b1ce97"
    ),
}


class TestFingerprints:
    @pytest.mark.parametrize(
        "key", sorted(GOLDEN_FINGERPRINTS), ids=lambda k: f"{k[0]}-{k[1]}x{k[2]}"
    )
    def test_golden_fingerprint(self, key):
        name, width, height, options = key
        config = NetworkConfig.from_name(
            name, width, height, **dict(options)
        )
        graph = make_topology(config).port_graph()
        assert graph.fingerprint() == GOLDEN_FINGERPRINTS[key]

    def test_fingerprint_is_stable_across_emissions(self):
        config = NetworkConfig.from_name("torus", 6, 6)
        first = make_topology(config).port_graph()
        second = make_topology(config).port_graph()
        assert first.fingerprint() == second.fingerprint()
        assert first.channels == second.channels

    def test_fingerprint_separates_topologies(self):
        fps = {
            make_topology(
                NetworkConfig.from_name(name, 8, 8)
            ).port_graph().fingerprint()
            for name in ("mesh", "torus", "multimesh", "ruche2-depop")
        }
        assert len(fps) == 4


class TestMinimalDistances:
    def test_mesh_distances_are_manhattan(self):
        graph = make_topology(
            NetworkConfig.from_name("mesh", 4, 4)
        ).port_graph()
        dest = Coord(2, 1)
        dist = minimal_distances(graph, dest)
        for node in graph.nodes:
            manhattan = abs(node[0] - dest.x) + abs(node[1] - dest.y)
            assert dist[node] == manhattan

    def test_torus3d_distances_are_ring_minimal(self):
        config = NetworkConfig.from_name("torus3d", 4, 4, depth=4)
        graph = make_topology(config).port_graph()
        dest = graph.nodes[0]
        dist = minimal_distances(graph, dest)
        for node in graph.nodes:
            expect = sum(
                min((d - c) % 4, (c - d) % 4)
                for c, d in zip(node, dest)
            )
            assert dist[node] == expect


# ---------------------------------------------------------------------------
# The registry-wide round-trip property
# ---------------------------------------------------------------------------
def _load_plugin():
    name = "plugin_topology_example"
    if name in sys.modules:
        return sys.modules[name]
    path = (
        Path(__file__).resolve().parents[2]
        / "examples"
        / "plugin_topology.py"
    )
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


#: One representative of every construction path the registry serves:
#: builtin 2-D, Ruche, the 3-D pack, and the out-of-tree plugin.
FAMILIES = (
    ("mesh", {}),
    ("torus", {}),
    ("ruche2-depop", {}),
    ("ruche2-pop", {"half": True}),
    ("mesh3d", {"depth": 2}),
    ("torus3d", {"depth": 4}),
    ("express-mesh", {}),
)


def _family_components(name, width, height, options):
    if name == "express-mesh":
        _load_plugin()
        provider = TOPOLOGIES.get(name)
        config = provider.config_factory(
            name, width, height, **options
        )
        bundle = network_components(config, provider=provider)
    else:
        config = NetworkConfig.from_name(
            name, width, height, **options
        )
        bundle = network_components(config)
    return bundle.topology, bundle.routing, bundle.matrix


@st.composite
def any_design_point(draw):
    name, options = draw(st.sampled_from(FAMILIES))
    width = draw(st.integers(4, 6))
    height = draw(st.integers(4, 6))
    if name == "express-mesh":
        # Stations every SPAN=4 columns; widen so express links exist.
        width += 4
    return name, width, height, options


@given(any_design_point(), st.data())
@tiered_settings(30, deadline=None)
def test_port_graph_round_trips_through_tabulation(point, data):
    """Emitted graph -> next-hop table -> chain walk ejects correctly.

    The exact walk the compiled engine lowers (and the certifier
    audits): start at ``(src, ejection_port)``, follow the table entry
    through the graph's ``out_map``, and require ejection at ``dest``
    within a livelock bound — for every source, for a sampled
    destination, on every registered family.
    """
    name, width, height, options = point
    topology, routing, _matrix = _family_components(
        name, width, height, options
    )
    graph = topology.port_graph()
    assert graph.fingerprint() == topology.port_graph().fingerprint()

    dest = data.draw(
        st.sampled_from(list(graph.nodes)), label="dest"
    )
    errors = []

    def on_error(state, exc):
        errors.append((state, exc))

    table = tabulate_next_hops(
        routing, graph, dest, on_error=on_error
    )
    assert errors == [], f"{name}: tabulation raised {errors[:3]}"

    bound = len(graph.nodes) * graph.num_ports * 4
    for src in graph.nodes:
        state = (
            src,
            graph.ejection_port,
            0,
            routing.injection_subnet(src, dest),
        )
        hops = 0
        while True:
            entry = table.get(state)
            assert entry is not None, (
                f"{name}: no table entry at {state!r} toward {dest!r}"
            )
            out_port, out_vc = entry
            if out_port == graph.ejection_port:
                assert state[0] == dest, (
                    f"{name}: {src!r} -> {dest!r} ejected at "
                    f"{state[0]!r}"
                )
                break
            hop = graph.out_map.get((state[0], out_port))
            assert hop is not None, (
                f"{name}: table routes {state!r} onto unwired port "
                f"{out_port}"
            )
            nxt, in_port, _latency = hop
            state = (nxt, in_port, out_vc, state[3])
            hops += 1
            assert hops <= bound, (
                f"{name}: {src!r} -> {dest!r} exceeded {bound} hops"
            )


def test_tabulation_reports_raising_routes():
    """A route() that raises is surfaced through on_error, not lost."""
    topology, routing, _matrix = _family_components("mesh", 4, 4, {})
    graph = topology.port_graph()

    class Exploding:
        uses_vcs = False

        def injection_subnet(self, src, dest):
            return 0

        def route(self, node, in_dir, dest, subnet=0):
            raise RoutingError("boom")

    seen = []
    table = tabulate_next_hops(
        Exploding(), graph, graph.nodes[0],
        on_error=lambda state, exc: seen.append(exc),
    )
    assert table == {}
    assert seen and all("boom" in str(e) for e in seen)
