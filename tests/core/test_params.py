"""Unit tests for NetworkConfig construction and validation."""

import pytest

from repro.core.params import DorOrder, NetworkConfig, TopologyKind
from repro.errors import ConfigError


class TestFromName:
    @pytest.mark.parametrize(
        "name, kind, rf, depop",
        [
            ("mesh", TopologyKind.MESH, 0, True),
            ("torus", TopologyKind.FOLDED_TORUS, 0, True),
            ("half-torus", TopologyKind.HALF_TORUS, 0, True),
            ("multimesh", TopologyKind.MULTI_MESH, 1, False),
            ("ruche1", TopologyKind.RUCHE_ONE, 1, False),
            ("ruche2-depop", TopologyKind.FULL_RUCHE, 2, True),
            ("ruche2-pop", TopologyKind.FULL_RUCHE, 2, False),
            ("ruche3", TopologyKind.FULL_RUCHE, 3, True),
        ],
    )
    def test_full_names(self, name, kind, rf, depop):
        cfg = NetworkConfig.from_name(name, 8, 8)
        assert cfg.kind is kind
        assert cfg.ruche_factor == rf
        assert cfg.depopulated == depop

    def test_half_flag_builds_half_ruche(self):
        cfg = NetworkConfig.from_name("ruche2-depop", 16, 8, half=True)
        assert cfg.kind is TopologyKind.HALF_RUCHE
        assert cfg.has_horizontal_ruche and not cfg.has_vertical_ruche

    def test_depop_is_default_for_ruche(self):
        assert NetworkConfig.from_name("ruche3", 8, 8).depopulated

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            NetworkConfig.from_name("hypercube", 8, 8)

    def test_round_trip_name(self):
        for name in ["mesh", "torus", "half-torus", "multimesh",
                     "ruche1-pop", "ruche2-depop", "ruche3-pop"]:
            cfg = NetworkConfig.from_name(name, 8, 8)
            assert cfg.name == name


class TestMalformedNames:
    """Malformed names fail with the offending token called out."""

    def test_ruche_zero_names_the_bad_factor(self):
        with pytest.raises(ConfigError, match="'ruche0'"):
            NetworkConfig.from_name("ruche0-pop", 8, 8)

    def test_bad_suffix_names_the_token(self):
        with pytest.raises(ConfigError, match="'oops'"):
            NetworkConfig.from_name("ruche3-oops", 8, 8)

    def test_non_numeric_factor_names_the_stem(self):
        with pytest.raises(ConfigError, match="'ruchex'"):
            NetworkConfig.from_name("ruchex-pop", 8, 8)

    def test_messages_still_name_the_full_input(self):
        for bad in ("ruche0-pop", "ruche3-oops"):
            with pytest.raises(ConfigError, match=bad):
                NetworkConfig.from_name(bad, 8, 8)


class TestValidation:
    def test_ruche_one_cannot_be_depopulated(self):
        with pytest.raises(ConfigError):
            NetworkConfig(
                TopologyKind.RUCHE_ONE, 8, 8, depopulated=True
            )

    def test_multimesh_cannot_be_depopulated(self):
        with pytest.raises(ConfigError):
            NetworkConfig(TopologyKind.MULTI_MESH, 8, 8, depopulated=True)

    def test_ruche_factor_must_fit_array(self):
        with pytest.raises(ConfigError):
            NetworkConfig(
                TopologyKind.FULL_RUCHE, 4, 4, ruche_factor=4,
                depopulated=True,
            )

    def test_ruche_needs_positive_factor(self):
        with pytest.raises(ConfigError):
            NetworkConfig(TopologyKind.FULL_RUCHE, 8, 8, ruche_factor=0)

    def test_torus_needs_two_vcs(self):
        with pytest.raises(ConfigError):
            NetworkConfig(TopologyKind.FOLDED_TORUS, 8, 8, num_vcs=1)

    def test_tiny_array_rejected(self):
        with pytest.raises(ConfigError):
            NetworkConfig(TopologyKind.MESH, 1, 1)

    def test_non_ruche_forces_zero_factor(self):
        cfg = NetworkConfig(TopologyKind.MESH, 8, 8, ruche_factor=3)
        assert cfg.ruche_factor == 0


class TestProperties:
    def test_num_nodes_and_shape(self):
        cfg = NetworkConfig(TopologyKind.MESH, 16, 8)
        assert cfg.num_nodes == 128
        assert cfg.shape == (16, 8)

    def test_uses_vcs_only_for_torus(self):
        assert NetworkConfig.from_name("torus", 8, 8).uses_vcs
        assert NetworkConfig.from_name("half-torus", 16, 8).uses_vcs
        assert not NetworkConfig.from_name("ruche2", 8, 8).uses_vcs

    def test_replace_changes_one_field(self):
        cfg = NetworkConfig.from_name("ruche2", 8, 8)
        cfg2 = cfg.replace(dor_order=DorOrder.YX)
        assert cfg2.dor_order is DorOrder.YX
        assert cfg2.ruche_factor == cfg.ruche_factor

    def test_vertical_ruche_presence(self):
        assert NetworkConfig.from_name("ruche2", 8, 8).has_vertical_ruche
        assert not NetworkConfig.from_name(
            "ruche2", 16, 8, half=True
        ).has_vertical_ruche
        assert NetworkConfig.from_name("ruche1", 8, 8).has_vertical_ruche
