"""Connectivity matrix tests: Figure 5's exact counts, and conformance of
every routing algorithm to its crossbar."""

import pytest

from repro.core.connectivity import (
    FULL_RUCHE_DEPOP_XY,
    FULL_RUCHE_POP_XY,
    MESH_XY,
    connectivity_matrix,
    input_fanout,
    max_mux_inputs,
    output_fanin,
    total_connections,
)
from repro.core.coords import Coord, Direction
from repro.core.params import DorOrder, NetworkConfig
from repro.core.routing import make_routing

P, W, E, N, S = (
    Direction.P, Direction.W, Direction.E, Direction.N, Direction.S,
)
RW, RE, RN, RS = (
    Direction.RW, Direction.RE, Direction.RN, Direction.RS,
)


class TestFigure5Counts:
    """The quantitative claims the paper makes about Figure 5."""

    def test_depopulation_removes_sixteen_connections(self):
        assert (
            total_connections(FULL_RUCHE_POP_XY)
            - total_connections(FULL_RUCHE_DEPOP_XY)
            == 16
        )

    def test_p_output_has_nine_then_seven_inputs(self):
        assert output_fanin(FULL_RUCHE_POP_XY)[P] == 9
        assert output_fanin(FULL_RUCHE_DEPOP_XY)[P] == 7

    def test_depopulation_removes_five_inputs_from_rs_and_rn(self):
        pop = output_fanin(FULL_RUCHE_POP_XY)
        depop = output_fanin(FULL_RUCHE_DEPOP_XY)
        assert pop[RS] - depop[RS] == 5
        assert pop[RN] - depop[RN] == 5

    def test_max_mux_inputs_seven_vs_nine(self):
        """Section 4.2: 'the maximum number of crossbar mux input is 7 and
        9 for depopulated and fully-populated'."""
        assert max_mux_inputs(FULL_RUCHE_DEPOP_XY) == 7
        assert max_mux_inputs(FULL_RUCHE_POP_XY) == 9

    def test_mesh_crossbar_shape(self):
        assert total_connections(MESH_XY) == 17
        assert output_fanin(MESH_XY)[P] == 5

    def test_pop_is_superset_of_depop(self):
        for inp, outs in FULL_RUCHE_DEPOP_XY.items():
            assert outs <= FULL_RUCHE_POP_XY[inp]

    def test_depop_ruche_inputs_cannot_turn(self):
        assert FULL_RUCHE_DEPOP_XY[RW] == frozenset({RE, E})
        assert FULL_RUCHE_DEPOP_XY[RE] == frozenset({RW, W})

    def test_y_ruche_inputs_deliver_directly(self):
        assert P in FULL_RUCHE_DEPOP_XY[RN]
        assert P in FULL_RUCHE_DEPOP_XY[RS]


class TestMatrixSelection:
    def test_torus_uses_mesh_crossbar(self):
        cfg = NetworkConfig.from_name("torus", 8, 8)
        assert connectivity_matrix(cfg) == MESH_XY

    def test_ruche_one_is_fully_populated(self):
        cfg = NetworkConfig.from_name("ruche1", 8, 8)
        assert connectivity_matrix(cfg) == FULL_RUCHE_POP_XY

    def test_half_ruche_has_seven_ports(self):
        cfg = NetworkConfig.from_name("ruche2-depop", 16, 8, half=True)
        matrix = connectivity_matrix(cfg)
        assert set(matrix) == {P, W, E, N, S, RW, RE}

    def test_yx_matrix_is_axis_swapped(self):
        xy = connectivity_matrix(NetworkConfig.from_name("mesh", 8, 8))
        yx = connectivity_matrix(
            NetworkConfig.from_name("mesh", 8, 8, dor_order=DorOrder.YX)
        )
        assert S in yx[N] and E in yx[N]  # N input may turn east in Y-X
        assert E not in xy[N]
        assert total_connections(xy) == total_connections(yx)

    def test_multimesh_crossbars_are_disjoint_meshes(self):
        cfg = NetworkConfig.from_name("multimesh", 8, 8)
        matrix = connectivity_matrix(cfg)
        # No path between the two meshes except through P.
        for inp in (W, E, N, S):
            assert not any(o.is_ruche for o in matrix[inp])
        for inp in (RW, RE, RN, RS):
            assert all(o.is_ruche or o is P for o in matrix[inp])

    def test_input_fanout_accounting(self):
        fanout = input_fanout(MESH_XY)
        assert fanout[P] == 5
        assert fanout[N] == 2


CONFIGS = [
    NetworkConfig.from_name("mesh", 9, 9),
    NetworkConfig.from_name("mesh", 9, 9, dor_order=DorOrder.YX),
    NetworkConfig.from_name("torus", 8, 8),
    NetworkConfig.from_name("half-torus", 10, 6),
    NetworkConfig.from_name("multimesh", 8, 8),
    NetworkConfig.from_name("ruche1", 8, 8),
    NetworkConfig.from_name("ruche2-depop", 9, 9),
    NetworkConfig.from_name("ruche2-pop", 9, 9),
    NetworkConfig.from_name("ruche3-depop", 10, 10),
    NetworkConfig.from_name("ruche3-pop", 10, 10),
    NetworkConfig.from_name("ruche2-depop", 12, 6, half=True),
    NetworkConfig.from_name("ruche2-pop", 12, 6, half=True),
    NetworkConfig.from_name(
        "ruche3-depop", 12, 6, half=True, dor_order=DorOrder.YX
    ),
    NetworkConfig.from_name(
        "ruche3-pop", 12, 6, half=True, dor_order=DorOrder.YX
    ),
]


@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: f"{c.name}-{c.dor_order.value}")
def test_routing_conforms_to_crossbar(cfg):
    """Exhaustive check: every (input, output) pair any route uses at any
    router must be a wired crossbar connection.  This is the link between
    the routing algorithms and the area/energy models."""
    routing_algo = make_routing(cfg)
    matrix = connectivity_matrix(cfg)
    nodes = [
        Coord(x, y) for x in range(cfg.width) for y in range(cfg.height)
    ]
    for src in nodes[:: max(1, len(nodes) // 24)]:
        for dest in nodes:
            path = routing_algo.compute_path(src, dest)
            in_dir = Direction.P
            for _node, out in path:
                assert out in matrix[in_dir], (
                    f"{cfg.name}: route uses unwired {in_dir.name}->"
                    f"{out.name} for {src}->{dest}"
                )
                in_dir = out.opposite
