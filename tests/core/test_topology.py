"""Unit tests for topology construction and analytic bandwidth accounting."""

import pytest

from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig, TopologyKind
from repro.core.topology import (
    Topology,
    physical_properties,
    table1_criteria,
    table1_topologies,
)
from repro.errors import ConfigError


def topo(name, w, h, **kw):
    return Topology(NetworkConfig.from_name(name, w, h, **kw))


class TestChannels:
    def test_mesh_channel_count(self):
        t = topo("mesh", 4, 4)
        # 2 * (3*4) unidirectional per axis = 48
        assert len(t.channels) == 48

    def test_torus_channel_count(self):
        t = topo("torus", 4, 4)
        # Every node has all four ring outputs: 4*16 = 64.
        assert len(t.channels) == 64

    def test_full_ruche_adds_clipped_ruche_channels(self):
        t = topo("ruche2-depop", 4, 4)
        # Mesh 48 + per row RE: (4-2)=2 eastward, 2 westward => 4*4=16
        # and same vertically: 16.  Total 80.
        assert len(t.channels) == 80

    def test_half_ruche_only_horizontal(self):
        t = topo("ruche2-depop", 4, 4, half=True)
        assert len(t.channels) == 48 + 16
        assert not any(
            d in (Direction.RN, Direction.RS) for _, d, _ in t.channels
        )

    def test_ruche_one_doubles_links(self):
        t = topo("ruche1", 4, 4)
        assert len(t.channels) == 96  # mesh 48 doubled

    def test_channel_endpoints_are_correct_for_ruche(self):
        t = topo("ruche3-depop", 8, 8)
        assert t.neighbor(Coord(0, 0), Direction.RE) == Coord(3, 0)
        assert t.neighbor(Coord(5, 7), Direction.RW) == Coord(2, 7)
        assert not t.has_channel(Coord(6, 0), Direction.RE)  # would exit

    def test_torus_wrap_channels(self):
        t = topo("torus", 4, 4)
        assert t.neighbor(Coord(3, 1), Direction.E) == Coord(0, 1)
        assert t.neighbor(Coord(0, 2), Direction.W) == Coord(3, 2)
        assert t.neighbor(Coord(2, 0), Direction.N) == Coord(2, 3)

    def test_half_torus_wraps_only_horizontally(self):
        t = topo("half-torus", 4, 4)
        assert t.neighbor(Coord(3, 1), Direction.E) == Coord(0, 1)
        assert not t.has_channel(Coord(2, 0), Direction.N)

    def test_channel_symmetry(self):
        """Every channel has a reverse channel (inputs mirror outputs)."""
        for name in ["mesh", "torus", "ruche2-depop", "ruche1", "multimesh"]:
            t = topo(name, 6, 6)
            chset = {(s, d, t_) for s, d, t_ in t.channels}
            for src, d, dst in t.channels:
                assert (dst, d.opposite, src) in chset


class TestEdgeMemory:
    def test_memory_nodes_on_both_edges(self):
        t = topo("mesh", 4, 4, edge_memory=True)
        assert len(t.memory_nodes) == 8
        assert Coord(0, -1) in t.memory_nodes
        assert Coord(3, 4) in t.memory_nodes

    def test_memory_channels_bidirectional(self):
        t = topo("mesh", 4, 4, edge_memory=True)
        assert t.neighbor(Coord(1, 0), Direction.N) == Coord(1, -1)
        assert t.neighbor(Coord(1, -1), Direction.S) == Coord(1, 0)
        assert t.neighbor(Coord(2, 3), Direction.S) == Coord(2, 4)

    def test_full_torus_rejects_edge_memory(self):
        with pytest.raises(ConfigError):
            topo("torus", 4, 4, edge_memory=True)

    def test_memory_tile_bandwidth(self):
        t = topo("mesh", 16, 8, edge_memory=True)
        assert t.memory_tile_bandwidth() == 32


class TestBisection:
    """Lock in the paper's Table 4 bisection-bandwidth numbers."""

    @pytest.mark.parametrize(
        "name, w, h, expected",
        [
            ("mesh", 16, 8, 16),
            ("ruche2-depop", 16, 8, 48),
            ("ruche3-depop", 16, 8, 64),
            ("mesh", 32, 16, 32),
            ("ruche2-depop", 32, 16, 96),
            ("ruche3-depop", 32, 16, 128),
            ("mesh", 64, 8, 16),
            ("ruche2-depop", 64, 8, 48),
            ("ruche3-depop", 64, 8, 64),
            ("mesh", 32, 8, 16),
            ("ruche2-depop", 32, 8, 48),
            ("ruche3-depop", 32, 8, 64),
        ],
    )
    def test_table4_vertical_bisection(self, name, w, h, expected):
        t = topo(name, w, h, half=name.startswith("ruche"))
        assert t.bisection_channels("vertical") == expected

    def test_torus_doubles_mesh_bisection(self):
        mesh = topo("mesh", 8, 8)
        torus = topo("torus", 8, 8)
        assert (
            torus.bisection_channels("vertical")
            == 2 * mesh.bisection_channels("vertical")
        )

    def test_half_torus_doubles_only_horizontal_cut(self):
        mesh = topo("mesh", 16, 8)
        ht = topo("half-torus", 16, 8)
        assert ht.bisection_channels("vertical") == 2 * mesh.bisection_channels(
            "vertical"
        )
        assert ht.bisection_channels("horizontal") == mesh.bisection_channels(
            "horizontal"
        )

    def test_memory_stub_channels_excluded(self):
        with_mem = topo("mesh", 16, 8, edge_memory=True)
        without = topo("mesh", 16, 8)
        assert (
            with_mem.bisection_channels("vertical")
            == without.bisection_channels("vertical")
        )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError):
            topo("mesh", 8, 8).bisection_channels("diagonal")


class TestLinkSpan:
    def test_local_and_ruche_spans(self):
        t = topo("ruche3-depop", 8, 8)
        assert t.link_span(Direction.E) == 1
        assert t.link_span(Direction.RE) == 3
        assert t.link_span(Direction.P) == 0

    def test_folded_torus_links_span_two_tiles(self):
        t = topo("torus", 8, 8)
        assert t.link_span(Direction.E) == 2
        assert t.link_span(Direction.S) == 2

    def test_half_torus_vertical_links_stay_local(self):
        t = topo("half-torus", 16, 8)
        assert t.link_span(Direction.E) == 2
        assert t.link_span(Direction.S) == 1


class TestRouterDirections:
    def test_mesh_router_has_five_ports(self):
        assert len(topo("mesh", 4, 4).router_directions) == 5

    def test_full_ruche_router_has_nine_ports(self):
        assert len(topo("ruche2-depop", 8, 8).router_directions) == 9

    def test_half_ruche_router_has_seven_ports(self):
        assert len(topo("ruche2", 16, 8, half=True).router_directions) == 7

    def test_torus_router_has_five_ports(self):
        assert len(topo("torus", 8, 8).router_directions) == 5


class TestTable1:
    def test_all_rows_present(self):
        assert len(table1_topologies()) == 7
        assert len(table1_criteria()) == 7

    def test_ruche_and_torus_meet_all_criteria(self):
        for kind in (TopologyKind.FULL_RUCHE, TopologyKind.FOLDED_TORUS):
            assert all(physical_properties(kind).values())

    def test_mesh_lacks_long_range_links_only(self):
        props = physical_properties(TopologyKind.MESH)
        assert not props["long_range_links"]
        assert sum(props.values()) == 6

    def test_high_radix_topologies_fail_tiling_criteria(self):
        fb = physical_properties("flattened-butterfly")
        assert not fb["constant_router_radix"]
        assert not fb["constant_link_distance"]
        mecs = physical_properties("mecs")
        assert not mecs["regular_tile_shape"]
        assert mecs["long_range_links"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            physical_properties("hypercube")
