"""Unit tests for the named component registries."""

import pytest

from repro.core.registry import (
    ROUTINGS,
    Registry,
    TopologyProvider,
    register_routing,
)
from repro.errors import ConfigError


class TestRegistry:
    def test_register_and_get_round_trip(self):
        reg = Registry("widget")
        reg.register("alpha", 1, description="first")
        assert reg.get("alpha") == 1
        assert reg.describe("alpha") == "first"
        assert "alpha" in reg
        assert len(reg) == 1

    def test_alias_resolves_but_is_not_listed(self):
        reg = Registry("widget")
        reg.register("alpha", 1, aliases=("a", "al"))
        assert reg.get("a") == 1
        assert reg.get("al") == 1
        assert reg.available() == ("alpha",)
        assert reg.describe("a") == reg.describe("alpha")

    def test_miss_raises_with_menu(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        reg.register("beta", 2)
        with pytest.raises(ConfigError) as excinfo:
            reg.get("gamma")
        message = str(excinfo.value)
        assert "unknown widget 'gamma'" in message
        assert "alpha" in message and "beta" in message

    def test_miss_on_empty_registry(self):
        reg = Registry("widget")
        with pytest.raises(ConfigError, match=r"\(none registered\)"):
            reg.get("anything")

    def test_duplicate_rejected_unless_replace(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        with pytest.raises(ConfigError, match="already registered"):
            reg.register("alpha", 2)
        reg.register("alpha", 2, replace=True)
        assert reg.get("alpha") == 2

    def test_duplicate_alias_rejected(self):
        reg = Registry("widget")
        reg.register("alpha", 1, aliases=("a",))
        with pytest.raises(ConfigError, match="alias 'a'"):
            reg.register("beta", 2, aliases=("a",))

    def test_unregister_removes_name_and_aliases(self):
        reg = Registry("widget")
        reg.register("alpha", 1, aliases=("a",))
        reg.unregister("alpha")
        assert "alpha" not in reg
        assert "a" not in reg
        with pytest.raises(ConfigError):
            reg.get("a")

    def test_add_decorator_returns_item(self):
        reg = Registry("widget")

        @reg.add("fn", description="a callable")
        def fn():
            return 42

        assert fn() == 42
        assert reg.get("fn") is fn


class TestComponentDecorators:
    def test_register_routing_decorator(self):
        name = "test-only-routing"
        try:

            @register_routing(name, description="for this test")
            def build(config):
                return None

            assert ROUTINGS.get(name) is build
            assert ROUTINGS.describe(name) == "for this test"
        finally:
            ROUTINGS.unregister(name)
        assert name not in ROUTINGS

    def test_builtin_routings_registered(self):
        for name in (
            "mesh-dor", "ruche-dor", "ruche-one", "multi-mesh", "torus-dor"
        ):
            assert name in ROUTINGS


class TestTopologyProvider:
    def test_custom_components_flag(self):
        bare = TopologyProvider(
            name="t", description="", config_factory=lambda *a, **k: None
        )
        assert not bare.has_custom_components
        custom = TopologyProvider(
            name="t",
            description="",
            config_factory=lambda *a, **k: None,
            routing_factory=lambda config: None,
        )
        assert custom.has_custom_components


class TestEnginesLazyPopulation:
    def test_fresh_process_menu_on_miss_lists_engines(self):
        """A process that never imported the simulator still gets the
        full engine menu on an unknown-engine lookup."""
        import subprocess
        import sys

        code = (
            "from repro.core.registry import ENGINES\n"
            "from repro.errors import ConfigError\n"
            "try:\n"
            "    ENGINES.get('bogus')\n"
            "except ConfigError as exc:\n"
            "    print(exc)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        assert "bogus" in out
        assert "reference" in out and "compiled" in out

    def test_available_triggers_population(self):
        from repro.core.registry import ENGINES

        names = ENGINES.available()
        assert "reference" in names and "compiled" in names
