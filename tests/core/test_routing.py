"""Routing algorithm tests: paper examples, invariants, property tests."""

import pytest
from hypothesis import given, strategies as st

from property.settings import tiered_settings

from repro.core.coords import Coord, Direction
from repro.core.params import DorOrder, NetworkConfig
from repro.core.routing import make_routing
from repro.core.topology import Topology

P, W, E, N, S = (
    Direction.P, Direction.W, Direction.E, Direction.N, Direction.S,
)
RW, RE, RN, RS = (
    Direction.RW, Direction.RE, Direction.RN, Direction.RS,
)


def routing(name, w=12, h=12, **kw):
    return make_routing(NetworkConfig.from_name(name, w, h, **kw))


def dirs_of(path):
    return [d for _, d in path]


class TestMeshDOR:
    def test_xy_goes_east_then_south(self):
        r = routing("mesh", 8, 8)
        path = r.compute_path(Coord(1, 1), Coord(4, 3))
        assert dirs_of(path) == [E, E, E, S, S, P]

    def test_yx_goes_south_then_east(self):
        r = make_routing(
            NetworkConfig.from_name("mesh", 8, 8, dor_order=DorOrder.YX)
        )
        path = r.compute_path(Coord(1, 1), Coord(4, 3))
        assert dirs_of(path) == [S, S, E, E, E, P]

    def test_self_delivery(self):
        r = routing("mesh", 8, 8)
        assert dirs_of(r.compute_path(Coord(2, 2), Coord(2, 2))) == [P]


class TestRucheFirstDimension:
    """The 'highway' behaviour of Figure 4 in the first (X) dimension."""

    def test_pop_rides_ruche_until_exact_arrival(self):
        r = routing("ruche3-pop", 12, 12)
        # dx = 6 = 2*RF: two Ruche hops, then turn directly off the Ruche
        # input (fully-populated allows RE-input -> S turn).
        path = r.compute_path(Coord(0, 0), Coord(6, 2))
        assert dirs_of(path) == [RE, RE, S, S, P]

    def test_depop_leaves_highway_before_turn(self):
        r = routing("ruche3-depop", 12, 12)
        # dx = 6: depopulated boards only while |dx| > RF, so one Ruche hop
        # then three local hops — non-minimal, as the paper notes.
        path = r.compute_path(Coord(0, 0), Coord(6, 0))
        assert dirs_of(path) == [RE, E, E, E, P]

    def test_depop_last_x_hop_is_always_local(self):
        r = routing("ruche3-depop", 12, 12)
        for dest_x in range(1, 12):
            path = r.compute_path(Coord(0, 5), Coord(dest_x, 7))
            x_hops = [d for d in dirs_of(path) if d.is_horizontal]
            assert x_hops[-1] in (E, W)

    def test_pop_boards_at_exactly_rf(self):
        r = routing("ruche3-pop", 12, 12)
        path = r.compute_path(Coord(0, 0), Coord(3, 0))
        assert dirs_of(path) == [RE, P]

    def test_short_distance_stays_local(self):
        r = routing("ruche3-pop", 12, 12)
        path = r.compute_path(Coord(0, 0), Coord(2, 0))
        assert dirs_of(path) == [E, E, P]

    def test_westward_symmetry(self):
        r = routing("ruche3-pop", 12, 12)
        path = r.compute_path(Coord(11, 0), Coord(2, 0))
        assert dirs_of(path) == [RW, RW, RW, P]


class TestRucheSecondDimension:
    """Local-first routing in the second (Y) dimension."""

    def test_local_until_multiple_of_rf(self):
        r = routing("ruche3-pop", 12, 12)
        # dy = 7: one local hop (7 % 3 != 0), then 6 = 2*RF on Ruche.
        path = r.compute_path(Coord(0, 0), Coord(0, 7))
        assert dirs_of(path) == [S, RS, RS, P]

    def test_pop_boards_y_ruche_directly_from_turn(self):
        r = routing("ruche3-pop", 12, 12)
        # dy = 6 at the turn: fully-populated boards RS straight from the
        # E-input (W->RS style connection).
        path = r.compute_path(Coord(0, 0), Coord(1, 6))
        assert dirs_of(path) == [E, RS, RS, P]

    def test_depop_takes_local_detour_before_y_ruche(self):
        r = routing("ruche3-depop", 12, 12)
        # Same journey: depopulated must take local Y hops until the
        # remainder is again a multiple of RF *and* it is on a Y input.
        path = r.compute_path(Coord(0, 0), Coord(1, 6))
        assert dirs_of(path) == [E, S, S, S, RS, P]

    def test_depop_rides_y_ruche_to_ejection(self):
        r = routing("ruche3-depop", 12, 12)
        path = r.compute_path(Coord(0, 0), Coord(0, 9))
        # Injection is a P input (not a Y-axis input), so one local hop
        # first would break the multiple; local-first takes 3 locals then
        # boards for the remaining 6.
        assert dirs_of(path) == [S, S, S, RS, RS, P]
        assert dirs_of(path)[-2] is RS

    def test_half_ruche_y_is_plain_mesh(self):
        r = routing("ruche3-depop", 16, 8, half=True)
        path = r.compute_path(Coord(0, 0), Coord(0, 6))
        assert dirs_of(path) == [S] * 6 + [P]


class TestRucheOne:
    def test_even_distance_rides_ruche_subnet(self):
        r = routing("ruche1", 8, 8)
        src, dest = Coord(0, 0), Coord(2, 2)
        assert r.injection_subnet(src, dest) == 1
        assert dirs_of(r.compute_path(src, dest)) == [RE, RE, RS, RS, P]

    def test_odd_distance_rides_local_subnet(self):
        r = routing("ruche1", 8, 8)
        src, dest = Coord(0, 0), Coord(2, 1)
        assert r.injection_subnet(src, dest) == 0
        assert dirs_of(r.compute_path(src, dest)) == [E, E, S, P]

    def test_path_never_mixes_subnets(self):
        r = routing("ruche1", 8, 8)
        for dest in [Coord(5, 3), Coord(1, 6), Coord(7, 7)]:
            path_dirs = dirs_of(r.compute_path(Coord(2, 2), dest))[:-1]
            classes = {d.is_ruche for d in path_dirs}
            assert len(classes) == 1


class TestMultiMesh:
    def test_even_distance_uses_mesh0(self):
        r = routing("multimesh", 8, 8)
        assert r.injection_subnet(Coord(0, 0), Coord(2, 2)) == 0
        path_dirs = dirs_of(r.compute_path(Coord(0, 0), Coord(2, 2)))[:-1]
        assert all(not d.is_ruche for d in path_dirs)

    def test_odd_distance_uses_mesh1(self):
        r = routing("multimesh", 8, 8)
        assert r.injection_subnet(Coord(0, 0), Coord(2, 1)) == 1
        path_dirs = dirs_of(r.compute_path(Coord(0, 0), Coord(2, 1)))[:-1]
        assert all(d.is_ruche for d in path_dirs)


class TestTorus:
    def test_shortest_way_wraps(self):
        r = routing("torus", 8, 8)
        path = r.compute_path(Coord(7, 0), Coord(1, 0))
        assert dirs_of(path) == [E, E, P]  # wrap through x=0

    def test_dateline_promotes_to_vc1(self):
        r = routing("torus", 8, 8)
        out, vc = r.route_vc(Coord(7, 0), W, 0, Coord(1, 0))
        assert out is E and vc == 1  # the 7->0 hop is the dateline

    def test_vc_sticky_after_crossing(self):
        r = routing("torus", 8, 8)
        out, vc = r.route_vc(Coord(0, 0), W, 1, Coord(1, 0))
        assert out is E and vc == 1

    def test_crossing_flows_enter_on_vc0(self):
        r = routing("torus", 8, 8)
        out, vc = r.route_vc(Coord(6, 0), P, 0, Coord(1, 0))
        assert out is E and vc == 0

    def test_non_crossing_flows_balanced_by_dest_hash(self):
        r = routing("torus", 8, 8)
        vcs = set()
        for dest_x in range(1, 4):
            _out, vc = r.route_vc(Coord(0, 3), P, 0, Coord(dest_x, 3))
            vcs.add(vc)
        assert vcs == {0, 1}

    def test_vc_resets_on_turn(self):
        r = routing("torus", 8, 8)
        # Arrived travelling east on VC1; turning south restarts the Y
        # ring's dateline logic.
        out, vc = r.route_vc(Coord(3, 0), W, 1, Coord(3, 2))
        assert out is S
        assert vc in (0, 1)  # chosen by crossing/hash logic, not carried
        out2, vc2 = r.route_vc(Coord(3, 6), P, 0, Coord(3, 1))
        assert out2 is S and vc2 == 0  # will wrap: must start on VC0

    def test_tie_breaks_split_by_destination(self):
        r = routing("torus", 8, 8)
        outs = set()
        for dest in [Coord(4, 0), Coord(4, 1)]:
            outs.add(r.route(Coord(0, dest.y), P, dest))
        assert outs == {E, W}

    def test_half_torus_vertical_is_mesh(self):
        r = routing("half-torus", 16, 8)
        path = r.compute_path(Coord(0, 7), Coord(0, 0))
        assert dirs_of(path) == [N] * 7 + [P]

    def test_half_torus_wraps_horizontally(self):
        r = routing("half-torus", 16, 8)
        assert r.route(Coord(15, 0), P, Coord(1, 0)) is E


ALL_NAMES = [
    "mesh", "torus", "half-torus", "multimesh", "ruche1",
    "ruche2-depop", "ruche2-pop", "ruche3-depop", "ruche3-pop",
]


class TestDeliveryProperty:
    """Every (src, dest) pair is deliverable on every topology."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_all_pairs_8x8(self, name):
        half = name in ("half-torus",)
        r = routing(name, 8, 8, half=half)
        nodes = [Coord(x, y) for x in range(8) for y in range(8)]
        for src in nodes[::5]:
            for dest in nodes:
                path = r.compute_path(src, dest)
                assert path[-1] == (dest, P)

    @pytest.mark.parametrize("name", ["ruche2-depop", "ruche3-pop"])
    def test_half_ruche_all_pairs_rectangular(self, name):
        r = routing(name, 16, 8, half=True)
        nodes = [Coord(x, y) for x in range(16) for y in range(8)]
        for src in nodes[::7]:
            for dest in nodes:
                assert r.compute_path(src, dest)[-1] == (dest, P)

    @pytest.mark.parametrize(
        "name",
        ["mesh", "half-torus", "ruche2-depop", "ruche2-pop",
         "ruche3-depop", "ruche3-pop"],
    )
    def test_edge_memory_destinations(self, name):
        half = name.startswith("ruche")
        r = routing(name, 16, 8, half=half, edge_memory=True)
        for x in range(0, 16, 3):
            for mem in (Coord(5, -1), Coord(5, 8)):
                path = r.compute_path(Coord(x, 3), mem)
                assert path[-1] == (mem, P)


class TestHopCounts:
    def test_ruche_shortens_paths(self):
        mesh = routing("mesh", 16, 16)
        ruche = routing("ruche3-pop", 16, 16)
        src, dest = Coord(0, 0), Coord(15, 15)
        assert ruche.hop_count(src, dest) < mesh.hop_count(src, dest)
        assert ruche.hop_count(src, dest) == 5 + 5  # RE*5, RS*5

    def test_depop_never_shorter_than_pop(self):
        pop = routing("ruche3-pop", 12, 12)
        depop = routing("ruche3-depop", 12, 12)
        for src in [Coord(0, 0), Coord(3, 7)]:
            for dest in [Coord(9, 9), Coord(11, 2), Coord(6, 6)]:
                assert depop.hop_count(src, dest) >= pop.hop_count(src, dest)

    def test_torus_halves_diameter(self):
        mesh = routing("mesh", 8, 8)
        torus = routing("torus", 8, 8)
        assert mesh.hop_count(Coord(0, 0), Coord(7, 7)) == 14
        assert torus.hop_count(Coord(0, 0), Coord(7, 7)) == 2


@st.composite
def config_and_pair(draw):
    name = draw(st.sampled_from(ALL_NAMES))
    w = draw(st.integers(min_value=5, max_value=12))
    h = draw(st.integers(min_value=5, max_value=12))
    half = draw(st.booleans()) if name.startswith("ruche2") else False
    if name == "half-torus":
        half = False
    cfg = NetworkConfig.from_name(name, w, h, half=half)
    src = Coord(draw(st.integers(0, w - 1)), draw(st.integers(0, h - 1)))
    dest = Coord(draw(st.integers(0, w - 1)), draw(st.integers(0, h - 1)))
    return cfg, src, dest


class TestRoutingProperties:
    @given(config_and_pair())
    @tiered_settings(300, deadline=None)
    def test_every_route_terminates_at_destination(self, case):
        cfg, src, dest = case
        r = make_routing(cfg)
        path = r.compute_path(src, dest)
        assert path[-1] == (dest, Direction.P)

    @given(config_and_pair())
    @tiered_settings(200, deadline=None)
    def test_routes_use_only_existing_channels(self, case):
        cfg, src, dest = case
        r = make_routing(cfg)
        topo = Topology(cfg)
        for node, out in r.compute_path(src, dest)[:-1]:
            assert topo.has_channel(node, out), (node, out)

    @given(config_and_pair())
    @tiered_settings(200, deadline=None)
    def test_non_torus_routes_are_bounded_by_manhattan(self, case):
        cfg, src, dest = case
        if cfg.kind.is_torus:
            return
        r = make_routing(cfg)
        hops = r.hop_count(src, dest)
        manhattan = src.manhattan(dest)
        # Depopulated detours add at most 2*(RF-1) hops per dimension.
        slack = 4 * max(1, cfg.ruche_factor)
        assert hops <= manhattan + slack
