"""Unit tests for coordinates and directions."""

import pytest

from repro.core.coords import (
    ALL_DIRECTIONS,
    MESH_DIRECTIONS,
    RUCHE_DIRECTIONS,
    Coord,
    Direction,
)


class TestDirection:
    def test_nine_directions_in_stable_index_order(self):
        assert len(ALL_DIRECTIONS) == 9
        assert [int(d) for d in ALL_DIRECTIONS] == list(range(9))
        assert Direction.P == 0

    def test_ruche_classification(self):
        assert all(d.is_ruche for d in RUCHE_DIRECTIONS)
        assert not any(d.is_ruche for d in MESH_DIRECTIONS)

    def test_local_link_classification(self):
        locals_ = [d for d in ALL_DIRECTIONS if d.is_local_link]
        assert locals_ == [Direction.W, Direction.E, Direction.N, Direction.S]

    def test_axis_classification(self):
        assert Direction.E.is_horizontal and Direction.RE.is_horizontal
        assert Direction.S.is_vertical and Direction.RS.is_vertical
        assert not Direction.P.is_horizontal
        assert not Direction.P.is_vertical

    @pytest.mark.parametrize("d", ALL_DIRECTIONS)
    def test_opposite_is_involution(self, d):
        assert d.opposite.opposite is d

    def test_opposite_pairs(self):
        assert Direction.E.opposite is Direction.W
        assert Direction.RN.opposite is Direction.RS
        assert Direction.P.opposite is Direction.P

    def test_local_step_is_unit(self):
        assert Direction.E.step(3) == (1, 0)
        assert Direction.N.step(3) == (0, -1)

    def test_ruche_step_scales_with_ruche_factor(self):
        assert Direction.RE.step(3) == (3, 0)
        assert Direction.RS.step(2) == (0, 2)
        assert Direction.RW.step(4) == (-4, 0)

    def test_p_does_not_move(self):
        assert Direction.P.step(5) == (0, 0)

    @pytest.mark.parametrize("d", ALL_DIRECTIONS)
    def test_step_matches_opposite_negated(self, d):
        dx, dy = d.step(3)
        ox, oy = d.opposite.step(3)
        assert (dx, dy) == (-ox, -oy)


class TestCoord:
    def test_accessors(self):
        c = Coord(3, 5)
        assert (c.x, c.y) == (3, 5)
        assert c == (3, 5)

    def test_manhattan(self):
        assert Coord(0, 0).manhattan(Coord(3, 4)) == 7
        assert Coord(2, 2).manhattan(Coord(2, 2)) == 0

    def test_offset(self):
        assert Coord(1, 1).offset(2, -1) == Coord(3, 0)

    def test_hashable_and_usable_as_dict_key(self):
        d = {Coord(1, 2): "a"}
        assert d[Coord(1, 2)] == "a"
        assert Coord(1, 2) == (1, 2)
        assert d[(1, 2)] == "a"
