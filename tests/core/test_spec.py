"""Unit tests for NetworkSpec and the declarative construction path."""

import pytest

from repro.core.params import NetworkConfig, TopologyKind
from repro.core.routing import MeshDOR, TorusDOR
from repro.core.spec import (
    NetworkSpec,
    build_config,
    build_network,
    build_pattern,
    build_routing,
    build_run,
    default_router_kind,
    network_components,
    resolve_topology,
)
from repro.errors import ConfigError
from repro.sim.simulator import run_synthetic


class TestNetworkSpec:
    def test_for_network_sorts_unknown_kwargs_into_options(self):
        spec = NetworkSpec.for_network(
            "ruche2-depop", 16, 8,
            half=True, pattern="tile_to_memory", edge_memory=True,
        )
        assert spec.pattern == "tile_to_memory"
        assert spec.options == (("edge_memory", True), ("half", True))

    def test_options_dict_is_frozen_sorted(self):
        spec = NetworkSpec("mesh", 8, 8, options={"b": 2, "a": 1})
        assert spec.options == (("a", 1), ("b", 2))

    def test_spec_is_hashable(self):
        a = NetworkSpec.for_network("mesh", 8, 8, rate=0.2)
        b = NetworkSpec.for_network("mesh", 8, 8, rate=0.2)
        assert a == b
        assert len({a, b}) == 1

    def test_to_dict_round_trips(self):
        spec = NetworkSpec.for_network(
            "ruche2-depop", 16, 8, half=True, rate=0.15, seed=7,
            stall_window=500,
        )
        data = spec.to_dict()
        assert data["options"] == {"half": True}
        assert NetworkSpec.from_dict(data) == spec

    def test_replace_and_with_options(self):
        spec = NetworkSpec("mesh", 8, 8)
        assert spec.replace(rate=0.3).rate == 0.3
        merged = spec.with_options(edge_memory=True)
        assert merged.options == (("edge_memory", True),)
        assert spec.options == ()

    def test_config_shortcut(self):
        spec = NetworkSpec.for_network("ruche2-depop", 16, 8, half=True)
        config = spec.config()
        assert config.kind is TopologyKind.HALF_RUCHE
        assert config.ruche_factor == 2


class TestResolveTopology:
    def test_exact_names(self):
        assert resolve_topology("mesh").name == "mesh"
        assert resolve_topology("half_torus").name == "half-torus"

    def test_ruche_grammar_falls_back_to_family(self):
        assert resolve_topology("ruche3-pop").name == "ruche"
        assert resolve_topology("ruche2-depop").name == "ruche"

    def test_fbfc_suffix_resolves_base_family(self):
        assert resolve_topology("torus-fbfc").name == "torus"

    def test_miss_lists_available_topologies(self):
        with pytest.raises(ConfigError) as excinfo:
            resolve_topology("hypercube")
        message = str(excinfo.value)
        assert "mesh" in message and "torus" in message

    def test_build_config_matches_from_name(self):
        spec = NetworkSpec.for_network("ruche2-depop", 16, 8, half=True)
        assert build_config(spec) == NetworkConfig.from_name(
            "ruche2-depop", 16, 8, half=True
        )
        fbfc = NetworkSpec("torus-fbfc", 8, 8)
        assert build_config(fbfc).fbfc


class TestComponentBuilders:
    def test_default_router_kind(self):
        assert default_router_kind(
            NetworkConfig.from_name("mesh", 8, 8)
        ) == "wormhole"
        assert default_router_kind(
            NetworkConfig.from_name("torus", 8, 8)
        ) == "vc"
        assert default_router_kind(
            NetworkConfig.from_name("torus-fbfc", 8, 8)
        ) == "fbfc"

    def test_build_routing_default_and_named(self):
        config = NetworkConfig.from_name("mesh", 8, 8)
        assert isinstance(build_routing(config), MeshDOR)
        assert isinstance(
            build_routing(config, name="torus-dor"), TorusDOR
        )

    def test_build_routing_unknown_name(self):
        config = NetworkConfig.from_name("mesh", 8, 8)
        with pytest.raises(ConfigError, match="mesh-dor"):
            build_routing(config, name="no-such-routing")

    def test_build_pattern_unknown_name(self):
        config = NetworkConfig.from_name("mesh", 8, 8)
        with pytest.raises(ConfigError, match="uniform_random"):
            build_pattern("no-such-pattern", config)

    def test_network_components_bundle(self):
        config = NetworkConfig.from_name("mesh", 8, 8)
        components = network_components(config)
        assert components.topology.config is config
        assert isinstance(components.routing, MeshDOR)
        assert components.matrix


class TestBuildNetwork:
    def test_config_passthrough(self):
        config = NetworkConfig.from_name("mesh", 4, 4)
        net = build_network(config)
        assert net.config is config

    def test_spec_resolves_overrides(self):
        spec = NetworkSpec.for_network("mesh", 4, 4, routing="mesh-dor")
        net = build_network(spec)
        assert isinstance(net.routing, MeshDOR)

    def test_spec_rejects_unknown_router_kind(self):
        spec = NetworkSpec.for_network("mesh", 4, 4, router="optical")
        with pytest.raises(ConfigError, match="wormhole"):
            build_network(spec)


class TestSpecRunEquivalence:
    def test_build_run_matches_config_run(self):
        """A spec-driven run is bit-identical to the config call."""
        config = NetworkConfig.from_name("mesh", 4, 4)
        direct = run_synthetic(
            config, "uniform_random", 0.1,
            warmup=50, measure=100, drain_limit=300, seed=3,
        )
        spec = NetworkSpec.for_network(
            "mesh", 4, 4,
            pattern="uniform_random", rate=0.1,
            warmup=50, measure=100, drain_limit=300, seed=3,
        )
        via_spec = build_run(spec)
        assert via_spec.avg_latency == direct.avg_latency
        assert via_spec.accepted_throughput == direct.accepted_throughput
        assert via_spec.total_cycles == direct.total_cycles
        assert via_spec.avg_hops == direct.avg_hops

    def test_run_synthetic_accepts_spec_directly(self):
        """run_synthetic resolves pattern/rate from the spec itself.

        The measurement window is still run_synthetic's own keywords —
        ``build_run`` is the path that expands the whole spec.
        """
        spec = NetworkSpec.for_network(
            "mesh", 4, 4, rate=0.1,
            warmup=50, measure=100, drain_limit=300, seed=3,
        )
        result = run_synthetic(
            spec, warmup=50, measure=100, drain_limit=300, seed=3
        )
        assert result.avg_latency == build_run(spec).avg_latency


class TestSpecForConfig:
    NAMES = (
        "mesh", "torus", "half-torus", "torus-fbfc", "half-torus-fbfc",
        "multimesh", "ruche1", "ruche2-depop", "ruche2-pop",
        "ruche3-depop",
    )

    def test_round_trips_builtin_families(self):
        from repro.core.spec import spec_for_config

        for name in self.NAMES:
            config = NetworkConfig.from_name(name, 16, 8)
            spec = spec_for_config(config)
            assert build_config(spec) == config, name

    def test_round_trips_variants(self):
        from repro.core.params import DorOrder
        from repro.core.spec import spec_for_config

        variants = [
            NetworkConfig.from_name("mesh", 8, 8, dor_order=DorOrder.YX),
            NetworkConfig.from_name("ruche2-depop", 16, 8, half=True),
            NetworkConfig.from_name(
                "ruche2-depop", 16, 8, half=True, dor_order=DorOrder.YX
            ),
            NetworkConfig.from_name("mesh", 8, 8, edge_memory=True),
            NetworkConfig.from_name("mesh", 8, 8, channel_latency=2),
        ]
        for config in variants:
            spec = spec_for_config(config)
            assert build_config(spec) == config, config.name

    def test_extra_spec_fields_pass_through(self):
        from repro.core.spec import spec_for_config

        config = NetworkConfig.from_name("mesh", 8, 8)
        spec = spec_for_config(config, pattern="bit_complement", seed=3)
        assert spec.pattern == "bit_complement"
        assert spec.seed == 3

    def test_spec_is_json_serializable(self):
        import json

        from repro.core.params import DorOrder
        from repro.core.spec import spec_for_config

        config = NetworkConfig.from_name(
            "mesh", 8, 8, dor_order=DorOrder.YX
        )
        spec = spec_for_config(config)
        payload = json.dumps(spec.to_dict())
        rebuilt = NetworkSpec.from_dict(json.loads(payload))
        assert build_config(rebuilt) == config


class TestContentHash:
    def test_stable_across_identical_specs(self):
        a = NetworkSpec.for_network("mesh", 8, 8, half=False, seed=1)
        b = NetworkSpec.for_network("mesh", 8, 8, half=False, seed=1)
        assert a.content_hash() == b.content_hash()

    def test_differs_on_any_field(self):
        base = NetworkSpec.for_network("mesh", 8, 8)
        assert (
            base.content_hash()
            != NetworkSpec.for_network("mesh", 8, 8, seed=2).content_hash()
        )
        assert (
            base.content_hash()
            != NetworkSpec.for_network("torus", 8, 8).content_hash()
        )

    def test_is_hex_sha256(self):
        digest = NetworkSpec.for_network("mesh", 4, 4).content_hash()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex
