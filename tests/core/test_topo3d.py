"""The 3-D mesh/torus topology pack, end to end.

Config grammar, emitted structure, XYZ routing, native certification
(declared-minimal basis), and compiled-engine provenance — the proof
that a topology whose nodes are not 2-D coordinates is a first-class
citizen of every layer built on the port-graph IR.
"""

import dataclasses

import pytest

from repro.core.coords import Coord, Coord3, Direction
from repro.core.params import NetworkConfig
from repro.core.registry import TOPOLOGIES
from repro.core.spec import NetworkSpec, build_run
from repro.core.topo3d import (
    Mesh3dDOR,
    Mesh3dTopology,
    Torus3dDOR,
    Torus3dTopology,
    make_routing_3d,
    topology_for_config,
)
from repro.core.topology import make_topology
from repro.errors import ConfigError, RoutingError
from repro.experiments.registry import run_experiment
from repro.sim.fastsim import lowering_problems
from repro.verify.certify import certify_config, enumerator_agrees
from repro.verify.engine import verify_config


def _mesh3d(width=3, height=3, depth=2, **overrides):
    return NetworkConfig.from_name(
        "mesh3d", width, height, depth=depth, **overrides
    )


def _torus3d(width=4, height=4, depth=2, **overrides):
    return NetworkConfig.from_name(
        "torus3d", width, height, depth=depth, **overrides
    )


class TestConfig:
    def test_depth_is_mandatory_for_3d(self):
        with pytest.raises(ConfigError, match="depth >= 2"):
            NetworkConfig.from_name("mesh3d", 4, 4)

    def test_depth_rejected_for_2d(self):
        with pytest.raises(ConfigError, match="only to 3-D"):
            NetworkConfig.from_name("mesh", 4, 4, depth=2)

    def test_torus3d_forces_fbfc(self):
        assert _torus3d().fbfc is True
        with pytest.raises(ConfigError, match="requires fbfc"):
            _torus3d(fbfc=False)

    def test_mesh3d_rejects_fbfc(self):
        with pytest.raises(ConfigError, match="fbfc"):
            _mesh3d(fbfc=True)

    def test_edge_memory_rejected(self):
        with pytest.raises(ConfigError, match="edge_memory"):
            _mesh3d(edge_memory=True)

    def test_num_nodes_counts_layers(self):
        assert _mesh3d(4, 4, 4).num_nodes == 64
        assert _torus3d(8, 8, 4).num_nodes == 256

    def test_registry_aliases(self):
        assert TOPOLOGIES.get("mesh-3d").name == "mesh3d"
        assert TOPOLOGIES.get("torus-3d").name == "torus3d"


class TestTopology:
    def test_dispatchers_pick_3d_classes(self):
        assert isinstance(make_topology(_mesh3d()), Mesh3dTopology)
        assert isinstance(make_topology(_torus3d()), Torus3dTopology)
        with pytest.raises(ConfigError, match="not a 3-D"):
            topology_for_config(NetworkConfig.from_name("mesh", 4, 4))

    def test_nodes_are_layer_major_coord3(self):
        topo = make_topology(_mesh3d(3, 3, 2))
        nodes = topo.nodes
        assert len(nodes) == 18
        assert all(isinstance(n, Coord3) for n in nodes)
        # z outermost, then row-major: layer 0 first, (x fastest).
        assert nodes[0] == Coord3(0, 0, 0)
        assert nodes[1] == Coord3(1, 0, 0)
        assert nodes[3] == Coord3(0, 1, 0)
        assert nodes[9] == Coord3(0, 0, 1)

    def test_mesh3d_channel_count(self):
        # 3x3x2: bidirectional x-edges 2*3*2, y-edges 3*2*2, z 3*3*1.
        topo = make_topology(_mesh3d(3, 3, 2))
        assert len(topo.port_graph().channels) == 2 * (12 + 12 + 9)

    def test_torus3d_channel_count(self):
        # Every node drives all six axis ports on a torus.
        topo = make_topology(_torus3d(4, 4, 4))
        assert len(topo.port_graph().channels) == 6 * 64

    def test_z_ports_render_as_up_down(self):
        graph = make_topology(_mesh3d()).port_graph()
        assert graph.port_name(int(Direction.RN)) == "D"
        assert graph.port_name(int(Direction.RS)) == "U"

    def test_link_spans(self):
        mesh = make_topology(_mesh3d())
        torus = make_topology(_torus3d())
        assert mesh.link_span(Direction.E) == 1
        assert mesh.link_span(Direction.RS) == 1
        # Folded rings interleave planar neighbours; the layer pitch
        # stays one regardless.
        assert torus.link_span(Direction.E) == 2
        assert torus.link_span(Direction.RS) == 1


class TestRouting:
    def test_dispatcher_and_config_guard(self):
        assert isinstance(make_routing_3d(_mesh3d()), Mesh3dDOR)
        assert isinstance(make_routing_3d(_torus3d()), Torus3dDOR)
        with pytest.raises(ConfigError, match="not a 3-D"):
            make_routing_3d(NetworkConfig.from_name("mesh", 4, 4))
        with pytest.raises(ConfigError, match="requires a 3-D"):
            Mesh3dDOR(NetworkConfig.from_name("mesh", 4, 4))

    def test_mesh3d_strict_xyz_order(self):
        routing = Mesh3dDOR(_mesh3d(3, 3, 3))
        dest = Coord3(2, 1, 1)
        assert routing.route(
            Coord3(0, 0, 0), Direction.P, dest
        ) is Direction.E
        assert routing.route(
            Coord3(2, 0, 0), Direction.W, dest
        ) is Direction.S
        assert routing.route(
            Coord3(2, 1, 0), Direction.N, dest
        ) is Direction.RS
        assert routing.route(dest, Direction.RN, dest) is Direction.P

    def test_mesh3d_minimal_hops_is_manhattan(self):
        routing = Mesh3dDOR(_mesh3d(3, 3, 3))
        assert routing.minimal_hops(
            Coord3(0, 0, 0), Coord3(2, 1, 2)
        ) == 5

    def test_torus3d_shortest_way_and_tiebreak(self):
        routing = Torus3dDOR(_torus3d(4, 4, 4))
        # 0 -> 3 on a 4-ring: one hop backward beats three forward.
        assert routing.route(
            Coord3(0, 0, 0), Direction.P, Coord3(3, 0, 0)
        ) is Direction.W
        # Distance exactly half the ring: tie breaks positive.
        assert routing.route(
            Coord3(0, 0, 0), Direction.P, Coord3(2, 0, 0)
        ) is Direction.E
        assert routing.minimal_hops(
            Coord3(0, 0, 0), Coord3(3, 2, 1)
        ) == 1 + 2 + 1

    def test_rejects_2d_nodes(self):
        routing = Mesh3dDOR(_mesh3d())
        with pytest.raises(RoutingError, match="Coord3"):
            routing.route(
                Coord(0, 0), Direction.P, Coord3(1, 1, 1)
            )


class TestCertification:
    def test_mesh3d_certifies_on_declared_minimal_basis(self):
        report = certify_config(_mesh3d(4, 4, 2))
        assert report.ok, report.problems()
        assert report.minimality_basis == "declared-minimal"
        assert report.minimality_checked is True
        assert report.cdg_required is True
        assert report.cdg_acyclic is True

    def test_torus3d_inherits_the_fbfc_waiver(self):
        report = certify_config(_torus3d(4, 4, 2))
        assert report.ok, report.problems()
        assert report.minimality_basis == "declared-minimal"
        # Ring CDG cycles are expected; FBFC bubbles stand in for
        # datelines, exactly as on the 2-D torus-fbfc points.
        assert report.cdg_required is False

    def test_certifier_agrees_with_enumerator(self):
        config = _mesh3d(3, 3, 2)
        certified = certify_config(config)
        verified = verify_config(config)
        assert verified.ok, verified.problems()
        assert enumerator_agrees(certified, verified)


class TestEngine:
    def _spec(self, name, width, height, depth, engine=None):
        return NetworkSpec.for_network(
            name,
            width,
            height,
            depth=depth,
            pattern="uniform_random",
            rate=0.05,
            warmup=50,
            measure=100,
            drain_limit=500,
            seed=1,
            engine=engine,
        )

    @pytest.mark.parametrize("name", ["mesh3d", "torus3d"])
    def test_lowering_is_clean(self, name):
        assert lowering_problems(self._spec(name, 4, 4, 2)) == []

    @pytest.mark.parametrize("name", ["mesh3d", "torus3d"])
    def test_compiled_provenance_and_equivalence(self, name):
        spec = self._spec(name, 4, 4, 2)
        compiled = build_run(spec.replace(engine="compiled"))
        reference = build_run(spec.replace(engine="reference"))
        assert compiled.engine == "compiled"
        assert reference.engine == "reference"
        c = dataclasses.asdict(compiled)
        r = dataclasses.asdict(reference)
        for fields in (c, r):
            fields.pop("engine")
            fields.pop("metrics")
        assert c == r
        assert (
            compiled.metrics.delivered_total
            == reference.metrics.delivered_total
        )


class TestSweep3d:
    def test_smoke_campaign(self):
        result = run_experiment("sweep3d", scale="smoke")
        assert result.experiment_id == "sweep3d"
        assert len(result.rows) == 2
        assert {row["config"] for row in result.rows} == {
            "mesh3d",
            "torus3d",
        }
        for row in result.rows:
            assert row["size"] == "4x4x3"
            assert row["pattern"] == "uniform_random"
            assert row["zero_load_latency"] > 0
            assert row["saturation_throughput"] > 0
