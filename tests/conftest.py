"""Repo-wide test fixtures and import paths.

Puts the ``tests/`` directory itself on ``sys.path`` so shared test
helpers import as plain (namespace) packages — e.g. the Hypothesis
intensity tiers in :mod:`property.settings` — without sprinkling
``__init__.py`` files through the test tree.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
