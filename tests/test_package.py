"""Package-level API surface tests."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.phys",
    "repro.manycore",
    "repro.manycore.kernels",
    "repro.analysis",
    "repro.experiments",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_helper():
    import repro

    curve = repro.load_latency_curve(
        repro.NetworkConfig.from_name("mesh", 4, 4),
        rates=[0.05],
        warmup=50,
        measure=100,
    )
    assert len(curve) == 1
    assert curve[0].avg_latency > 0


def test_error_hierarchy():
    from repro import errors

    for exc in (errors.ConfigError, errors.RoutingError,
                errors.SimulationError, errors.WorkloadError):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)
