"""Unit tests for the AST determinism lint, plus repo cleanliness."""

import textwrap

from repro.verify import lint_determinism, lint_source


def findings_for(snippet):
    return lint_source(textwrap.dedent(snippet), "snippet.py")


def rules_for(snippet):
    return [f.rule for f in findings_for(snippet)]


class TestRandomRule:
    def test_global_random_call_flagged(self):
        assert rules_for("import random\nx = random.random()\n") == [
            "DET-RANDOM"
        ]

    def test_unseeded_random_instance_flagged(self):
        assert rules_for("import random\nr = random.Random()\n") == [
            "DET-RANDOM"
        ]

    def test_seeded_random_instance_allowed(self):
        assert rules_for("import random\nr = random.Random(42)\n") == []

    def test_system_random_flagged(self):
        assert rules_for("import random\nr = random.SystemRandom()\n") == [
            "DET-RANDOM"
        ]

    def test_rng_module_exempt(self):
        source = "import random\nr = random.Random()\n"
        assert lint_source(source, "rng.py", exempt_random=True) == []


class TestClockRules:
    def test_time_monotonic_flagged(self):
        assert rules_for("import time\nt = time.monotonic()\n") == [
            "DET-TIME"
        ]

    def test_datetime_now_flagged(self):
        assert rules_for(
            "import datetime\nd = datetime.datetime.now()\n"
        ) == ["DET-DATE"]

    def test_entropy_flagged(self):
        assert rules_for("import os\nb = os.urandom(8)\n") == ["DET-ENTROPY"]
        assert rules_for("import uuid\nu = uuid.uuid4()\n") == ["DET-ENTROPY"]


class TestSetIterationRule:
    def test_for_over_set_display_flagged(self):
        assert rules_for(
            """
            for x in {1, 2, 3}:
                pass
            """
        ) == ["DET-SET-ITER"]

    def test_comprehension_over_set_call_flagged(self):
        assert rules_for("y = [x for x in set(range(3))]\n") == [
            "DET-SET-ITER"
        ]

    def test_list_of_set_flagged(self):
        assert rules_for("y = list({1, 2})\n") == ["DET-SET-ITER"]

    def test_sorted_view_allowed(self):
        assert rules_for("y = [x for x in sorted({1, 2})]\n") == []

    def test_membership_test_allowed(self):
        assert rules_for("ok = 3 in {1, 2, 3}\n") == []


class TestPragma:
    def test_allow_pragma_suppresses(self):
        source = "import time\nt = time.monotonic()  # det: allow - budget\n"
        assert lint_source(source, "snippet.py") == []

    def test_pragma_is_per_line(self):
        source = (
            "import time\n"
            "a = time.monotonic()  # det: allow\n"
            "b = time.monotonic()\n"
        )
        findings = lint_source(source, "snippet.py")
        assert [f.line for f in findings] == [3]


class TestFindingRendering:
    def test_render_has_location_and_rule(self):
        (finding,) = findings_for("import time\nt = time.time()\n")
        rendered = finding.render()
        assert "snippet.py:2" in rendered
        assert "DET-TIME" in rendered


def test_repo_core_and_sim_are_clean():
    """The shipped simulation core must carry zero violations."""
    findings = lint_determinism()
    assert findings == [], "\n".join(f.render() for f in findings)
