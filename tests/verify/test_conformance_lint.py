"""Tests for the conformance lints (``repro.verify.lints``)."""

from repro.verify.lints import (
    StreamSite,
    lint_conformance,
    lint_conformance_source,
    shared_stream_findings,
)


def findings_of(source, path="mod.py"):
    findings, _sites = lint_conformance_source(source, path)
    return findings


def sites_of(source, path="mod.py"):
    _findings, sites = lint_conformance_source(source, path)
    return sites


class TestRngStreamLiteral:
    def test_literal_stream_is_clean(self):
        source = 'rng = derive_rng(seed, "timing")\n'
        assert findings_of(source) == []
        (site,) = sites_of(source)
        assert site.stream == "timing" and not site.shared_ok

    def test_literal_keyword_stream_is_clean(self):
        assert findings_of('derive_rng(seed, stream="dest")\n') == []

    def test_computed_stream_is_flagged(self):
        (finding,) = findings_of("derive_rng(seed, name)\n")
        assert finding.rule == "RNG-STREAM-LITERAL"

    def test_fstring_stream_is_flagged(self):
        (finding,) = findings_of('derive_rng(seed, f"row{i}")\n')
        assert finding.rule == "RNG-STREAM-LITERAL"

    def test_attribute_call_is_covered(self):
        (finding,) = findings_of("rng.derive_rng(seed, name)\n")
        assert finding.rule == "RNG-STREAM-LITERAL"

    def test_allow_pragma_suppresses(self):
        source = "derive_rng(seed, name)  # lint: allow\n"
        assert findings_of(source) == []


class TestRngStreamShared:
    def test_same_stream_in_two_modules_is_flagged(self):
        sites = sites_of(
            'derive_rng(seed, "timing")\n', "a.py"
        ) + sites_of('derive_rng(seed, "timing")\n', "b.py")
        findings = shared_stream_findings(sites)
        assert len(findings) == 2
        assert all(f.rule == "RNG-STREAM-SHARED" for f in findings)

    def test_shared_pragma_waives_a_site(self):
        sites = sites_of(
            'derive_rng(seed, "timing")  # rng: shared\n', "a.py"
        ) + sites_of('derive_rng(seed, "timing")\n', "b.py")
        findings = shared_stream_findings(sites)
        (finding,) = findings
        assert finding.path == "b.py"

    def test_same_module_duplication_is_fine(self):
        source = 'derive_rng(seed, "x")\nderive_rng(seed, "x")\n'
        assert shared_stream_findings(sites_of(source)) == []

    def test_stream_site_is_frozen(self):
        site = StreamSite("s", "a.py", 1, 0, False)
        assert site.stream == "s"


class TestSlotsConformance:
    def test_slotless_subclass_of_slotted_base_is_flagged(self):
        source = (
            "class Base:\n"
            '    __slots__ = ("x",)\n'
            "class Child(Base):\n"
            "    pass\n"
        )
        (finding,) = findings_of(source)
        assert finding.rule == "CONF-SLOTS"
        assert "Child" in finding.message

    def test_slotted_subclass_is_clean(self):
        source = (
            "class Base:\n"
            '    __slots__ = ("x",)\n'
            "class Child(Base):\n"
            '    __slots__ = ("y",)\n'
        )
        assert findings_of(source) == []

    def test_transitive_slotting_is_tracked(self):
        source = (
            "class A:\n"
            '    __slots__ = ()\n'
            "class B(A):\n"
            '    __slots__ = ()\n'
            "class C(B):\n"
            "    pass\n"
        )
        (finding,) = findings_of(source)
        assert "C" in finding.message

    def test_unslotted_hierarchy_is_ignored(self):
        source = "class A:\n    pass\nclass B(A):\n    pass\n"
        assert findings_of(source) == []

    def test_allow_pragma_suppresses(self):
        source = (
            "class Base:\n"
            '    __slots__ = ("x",)\n'
            "class Child(Base):  # lint: allow\n"
            "    pass\n"
        )
        assert findings_of(source) == []


class TestRegistryDescriptions:
    def test_register_without_description_is_flagged(self):
        (finding,) = findings_of('register_topology("mesh")\n')
        assert finding.rule == "CONF-REG-DESC"

    def test_empty_description_is_flagged(self):
        source = 'register_routing("dor", description="")\n'
        (finding,) = findings_of(source)
        assert finding.rule == "CONF-REG-DESC"

    def test_computed_description_is_flagged(self):
        source = 'register_router("vc", description=DESC)\n'
        (finding,) = findings_of(source)
        assert finding.rule == "CONF-REG-DESC"

    def test_literal_description_is_clean(self):
        source = 'register_engine("ref", description="the reference")\n'
        assert findings_of(source) == []

    def test_uppercase_registry_add_is_covered(self):
        (finding,) = findings_of('ENGINES.add("x", item=f)\n')
        assert finding.rule == "CONF-REG-DESC"
        assert "ENGINES.add" in finding.message

    def test_lowercase_receiver_is_not_a_registry(self):
        assert findings_of('parser.add("x")\n') == []

    def test_registry_module_is_exempt(self):
        source = 'register_topology("mesh")\n'
        assert findings_of(source, path="src/repro/core/registry.py") == []


class TestRepoIsClean:
    def test_lint_covered_packages_have_no_findings(self):
        findings = lint_conformance()
        assert findings == [], [f.render() for f in findings]
