"""Tests for the table certifier (``repro.verify.certify``).

The certifier proves route soundness, deadlock freedom, and lowering
safety from exported next-hop tables; these tests pin the positive
paths (every paper config certifies and agrees with the exhaustive 2-D
enumerator), the negative paths (broken crossbars, livelocks,
nondeterministic routings, masked-port escapes are concrete findings),
and the plugin path (an out-of-tree topology certifies with zero
coordinate assumptions).
"""

import dataclasses
import importlib.util
import json
import sys
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from property.settings import tiered_settings

from repro.core.connectivity import connectivity_matrix
from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig
from repro.core.routing import (
    FaultAwareTableRouting,
    MeshDOR,
    make_fault_aware_routing,
)
from repro.core.spec import NetworkSpec
from repro.verify import (
    certify_config,
    certify_problems,
    certify_spec,
    cross_validate_spec,
    enumerator_agrees,
    verify_config,
)

FAMILY_NAMES = (
    "mesh",
    "torus",
    "half-torus",
    "torus-fbfc",
    "half-torus-fbfc",
    "multimesh",
    "ruche1",
    "ruche2-depop",
    "ruche2-pop",
)


class TestAcceptsHealthyConfigs:
    @pytest.mark.parametrize("name", FAMILY_NAMES)
    def test_8x8_certifies_and_agrees(self, name):
        config = NetworkConfig.from_name(name, 8, 8)
        certified = certify_config(config)
        assert certified.ok, certified.problems()
        assert certified.minimality_basis == "monotone-dor"
        enumerated = verify_config(config)
        assert enumerator_agrees(certified, enumerated)

    def test_rectangular_agrees(self):
        config = NetworkConfig.from_name("ruche3-depop", 16, 8)
        certified = certify_config(config)
        enumerated = verify_config(config)
        assert certified.ok, certified.problems()
        assert enumerator_agrees(certified, enumerated)

    def test_depopulated_ruche_detours_match_enumerator(self):
        config = NetworkConfig.from_name("ruche2-depop", 8, 8)
        certified = certify_config(config)
        enumerated = verify_config(config)
        assert certified.non_minimal_expected
        assert certified.non_minimal_pairs == enumerated.non_minimal_pairs
        assert certified.max_detour == enumerated.max_detour


class TestRejectsBrokenCrossbar:
    def test_missing_turn_named_in_report(self):
        config = NetworkConfig.from_name("mesh", 8, 8)
        matrix = dict(connectivity_matrix(config))
        matrix[Direction.W] = matrix[Direction.W] - {Direction.N}
        report = certify_config(config, matrix=matrix)
        assert not report.ok
        assert any("W -> N" in turn for turn in report.illegal_turns)


class _PingPong(MeshDOR):
    """Bounces east/west forever between two columns: a routing livelock."""

    def route(self, node, in_dir, dest, subnet=0):
        if node == dest:
            return Direction.P
        return Direction.W if node.x >= 2 else Direction.E


class _Flaky(MeshDOR):
    """Answers differently on every call: a nondeterministic routing."""

    def __init__(self, config):
        super().__init__(config)
        self.calls = 0

    def route(self, node, in_dir, dest, subnet=0):
        self.calls += 1
        out = super().route(node, in_dir, dest, subnet)
        if out is Direction.P and node != dest:  # pragma: no cover
            return out
        if self.calls % 7 == 0 and out in (Direction.E, Direction.W):
            return Direction.N if node.y > 0 else Direction.S
        return out


class TestRejectsBrokenRouting:
    def test_livelock_detected_with_state_cycle(self):
        config = NetworkConfig.from_name("mesh", 8, 8)
        report = certify_config(config, _PingPong(config))
        assert not report.ok
        assert any("state cycle" in entry for entry in report.unreached)

    def test_nondeterminism_is_a_table_mismatch(self):
        config = NetworkConfig.from_name("mesh", 4, 4)
        report = certify_config(config, _Flaky(config))
        assert not report.ok
        assert report.table_mismatches
        assert any(
            "table/reference mismatch" in p for p in report.problems()
        )


class _Oblivious(FaultAwareTableRouting):
    """Routes plain X-Y DOR, ignoring its own masked links."""

    def route(self, node, in_dir, dest, subnet=0):
        dx = dest.x - node.x
        if dx:
            return Direction.E if dx > 0 else Direction.W
        dy = dest.y - node.y
        if dy:
            return Direction.S if dy > 0 else Direction.N
        return Direction.P


class TestFaultMaskedTables:
    def test_seeded_fault_spec_certifies(self):
        spec = NetworkSpec.for_network(
            "mesh", 8, 8, fault_links=4, fault_routers=1, fault_seed=7
        )
        report = certify_spec(spec)
        assert report.ok, report.problems()
        assert report.minimality_basis == "bfs-tables"
        assert not report.cdg_required
        assert report.partitioned_pairs == 0
        assert any("watchdog" in w for w in report.warnings)

    def test_fault_spec_agrees_with_enumerator(self):
        spec = NetworkSpec.for_network(
            "ruche2-depop", 8, 8, fault_links=3, fault_seed=7
        )
        report, agrees = cross_validate_spec(spec)
        assert report.ok, report.problems()
        assert agrees

    def test_masked_escape_is_a_finding(self):
        config = NetworkConfig.from_name("mesh", 4, 4)
        routing = _Oblivious(
            config, dead_links=[(Coord(1, 0), Direction.E)]
        )
        report = certify_config(config, routing)
        assert not report.ok
        assert any("masked link" in e for e in report.masked_escapes)
        assert any("masked-port escape" in p for p in report.problems())

    def test_dead_router_escape_is_a_finding(self):
        config = NetworkConfig.from_name("mesh", 4, 4)
        routing = _Oblivious(config, dead_nodes=[Coord(1, 1)])
        report = certify_config(config, routing)
        assert not report.ok
        assert any("dead router" in e for e in report.masked_escapes)


def _load_plugin_module():
    """Import the example once per process, by file path.

    Uses the same module name as ``tests/examples`` so whichever test
    file runs first does the (sole) registration.
    """
    name = "plugin_topology_example"
    if name in sys.modules:
        return sys.modules[name]
    path = (
        Path(__file__).resolve().parents[2]
        / "examples"
        / "plugin_topology.py"
    )
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestPluginTopology:
    @pytest.fixture(scope="class")
    def plugin(self):
        return _load_plugin_module()

    def test_express_mesh_certifies_on_graph_basis(self, plugin):
        report = certify_spec(plugin.demo_spec())
        assert report.ok, report.problems()
        assert report.minimality_basis == "graph-bfs"
        assert not report.minimality_checked
        # Station boarding is legitimately graph-non-minimal; the audit
        # is informational and must not fail the verdict.
        assert report.topology == "express-mesh"

    def test_express_mesh_compiles_via_generic_tabulation(self, plugin):
        # Plugin components lower through the generic port-graph route
        # tabulation; the old blanket plugin-components gate is gone.
        report = certify_spec(plugin.demo_spec())
        assert report.compiles is True
        assert report.lowering == []


class TestLoweringDiagnostics:
    def test_compilable_spec_has_no_diagnostics(self):
        report = certify_spec(NetworkSpec.for_network("mesh", 4, 4))
        assert report.compiles is True
        assert report.lowering == []

    def test_pipelined_channels_named_exactly(self):
        spec = NetworkSpec.for_network("mesh", 4, 4, channel_latency=2)
        report = certify_spec(spec)
        assert report.compiles is False
        assert [d["code"] for d in report.lowering] == [
            "pipelined-channels"
        ]

    def test_edge_memory_named_exactly(self):
        spec = NetworkSpec.for_network("mesh", 4, 4, edge_memory=True)
        report = certify_spec(spec)
        assert report.compiles is False
        assert "edge-memory" in [d["code"] for d in report.lowering]


class TestCertifyProblems:
    def test_healthy_targets_yield_no_problems(self):
        targets = [
            NetworkConfig.from_name("mesh", 4, 4),
            NetworkSpec.for_network("ruche2-depop", 8, 8),
        ]
        assert certify_problems(targets) == []

    def test_broken_config_is_reported_with_label(self):
        config = NetworkConfig.from_name("mesh", 4, 4)
        problems = certify_problems([config, config])  # dedup too
        assert problems == []
        routing_problems = certify_problems(
            [NetworkSpec.for_network("mesh", 4, 4)]
        )
        assert routing_problems == []

    def test_campaign_preflight_certify_gate(self):
        from repro.verify import campaign_preflight

        thunk = campaign_preflight(
            [NetworkConfig.from_name("mesh", 4, 4)], certify=True
        )
        assert thunk() == []


class TestReportShape:
    def test_to_dict_round_trips_subclass_fields(self):
        report = certify_spec(NetworkSpec.for_network("mesh", 4, 4))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["minimality_basis"] == "monotone-dor"
        assert payload["spec_hash"] == report.spec_hash
        assert payload["compiles"] is True
        assert payload["masked_escapes"] == []

    def test_summary_carries_basis(self):
        report = certify_config(NetworkConfig.from_name("mesh", 4, 4))
        assert "\n" not in report.summary()
        assert "basis=monotone-dor" in report.summary()


#: Small random design points: the certifier must reach the exact same
#: verdict as the exhaustive enumerator on everything 2-D.
random_configs = st.builds(
    NetworkConfig.from_name,
    st.sampled_from(
        ["mesh", "torus", "half-torus", "ruche2-depop", "ruche2-pop"]
    ),
    st.integers(3, 6),
    st.integers(3, 6),
)


@tiered_settings(25, deadline=None)
@given(random_configs)
def test_certifier_verdict_matches_enumerator(config):
    certified = certify_config(config)
    enumerated = verify_config(config)
    assert certified.ok == enumerated.ok
    assert enumerator_agrees(certified, enumerated), (
        dataclasses.asdict(certified),
        dataclasses.asdict(enumerated),
    )
