"""Property tests tying the path helpers to the static verifier.

Across every topology family: ``compute_path`` ends with a ``P``
ejection at the destination, its length agrees with ``hop_count``, and
the hop count never exceeds the bound the static verifier proved for
the whole design point.
"""

from hypothesis import given, strategies as st

from property.settings import tiered_settings

from repro.core.coords import Coord, Direction
from repro.core.params import NetworkConfig
from repro.core.routing import make_routing
from repro.verify import verify_config

#: One representative of each of the six topology families.
FAMILY_NAMES = (
    "mesh", "torus", "half-torus", "multimesh", "ruche1", "ruche2-depop",
)

SIZES = ((8, 8), (16, 8), (5, 7))

configs = st.sampled_from([
    NetworkConfig.from_name(name, w, h)
    for name in FAMILY_NAMES
    for (w, h) in SIZES
])

#: Proven max_hops per design point, computed once (verification walks
#: every pair, so per-example reruns would dominate the test's runtime).
_VERIFIED = {}


def verified_max_hops(config):
    key = (config.name, config.width, config.height)
    if key not in _VERIFIED:
        report = verify_config(config)
        assert report.ok, report.problems()
        _VERIFIED[key] = report.max_hops
    return _VERIFIED[key]


@st.composite
def config_and_pair(draw):
    config = draw(configs)
    src = Coord(
        draw(st.integers(0, config.width - 1)),
        draw(st.integers(0, config.height - 1)),
    )
    dest = Coord(
        draw(st.integers(0, config.width - 1)),
        draw(st.integers(0, config.height - 1)),
    )
    return config, src, dest


@tiered_settings(200, deadline=None)
@given(config_and_pair())
def test_path_terminates_at_dest_with_consistent_length(case):
    config, src, dest = case
    routing = make_routing(config)
    path = routing.compute_path(src, dest)
    last_node, last_out = path[-1]
    assert last_out is Direction.P
    assert last_node == dest
    # Every non-final element is a channel traversal.
    assert all(out is not Direction.P for _node, out in path[:-1])
    assert routing.hop_count(src, dest) == len(path) - 1


@tiered_settings(60, deadline=None)
@given(config_and_pair())
def test_hop_count_within_verified_bound(case):
    config, src, dest = case
    bound = verified_max_hops(config)
    routing = make_routing(config)
    assert routing.hop_count(src, dest) <= bound
