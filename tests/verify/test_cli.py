"""CLI tests for ``python -m repro.verify``."""

import json

from repro.verify.__main__ import main


class TestSingleConfig:
    def test_ok_config_exits_zero(self, capsys):
        assert main(["--config", "mesh", "--size", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "mesh" in out and "ok" in out

    def test_json_payload(self, capsys, tmp_path):
        target = tmp_path / "report.json"
        code = main(
            ["--config", "ruche2-depop", "--size", "4x4",
             "--json", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["ok"] is True
        assert payload["verified"] == 1
        assert payload["failed"] == 0
        (report,) = payload["reports"]
        assert report["config"] == "ruche2-depop"
        assert report["problems"] == []

    def test_bad_size_is_config_error(self):
        assert main(["--config", "mesh", "--size", "nonsense"]) == 2

    def test_unknown_config_is_config_error(self):
        assert main(["--config", "zorp", "--size", "4x4"]) == 2


class TestMatrixMode:
    def test_small_matrix_all_ok(self, capsys):
        code = main(["--sizes", "4x4", "--rf", "2", "--skip-lint"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out and "FAIL" not in out

    def test_lint_only_mode(self, capsys):
        assert main(["--lint-only"]) == 0


PLUGIN_ARGS = [
    "--load", "examples/plugin_topology.py",
    "--spec", '{"topology": "express-mesh", "width": 8, "height": 8}',
]


class TestCertifyMode:
    def test_single_config_certifies(self, capsys):
        code = main(
            ["--certify", "--config", "mesh", "--size", "4x4",
             "--skip-lint"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "basis=monotone-dor" in out
        assert "0 enumerator disagreement(s)" in out

    def test_json_payload_has_hash_and_provenance(self, tmp_path):
        target = tmp_path / "certify.json"
        code = main(
            ["--certify", "--config", "ruche2-depop", "--size", "4x4",
             "--skip-lint", "--json", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["ok"] is True
        assert payload["disagreements"] == 0
        provenance = payload["provenance"]
        assert provenance["mode"] == "certify"
        assert "reference" in provenance["engines"]
        assert provenance["repro_version"]
        (report,) = payload["reports"]
        assert len(report["spec_hash"]) == 64
        assert report["enumerator_agrees"] is True
        assert report["compiles"] is True

    def test_small_matrix_certifies(self, capsys):
        code = main(
            ["--certify", "--sizes", "4x4", "--rf", "2",
             "--no-fault-aware", "--skip-lint", "--no-cross-validate"]
        )
        assert code == 0
        assert "FAIL" not in capsys.readouterr().out

    def test_plugin_load_and_spec(self, tmp_path):
        # Subprocess: the test process may already have the example
        # registered (tests/examples loads it), and a fresh process is
        # exactly how CI invokes --load.
        import subprocess
        import sys

        target = tmp_path / "certify.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.verify", "--certify",
             "--config", "mesh", "--size", "4x4", "--skip-lint",
             "--json", str(target), *PLUGIN_ARGS],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(target.read_text())
        assert payload["verified"] == 2
        express = payload["reports"][1]
        assert express["topology"] == "express-mesh"
        assert express["minimality_basis"] == "graph-bfs"
        # Plugin components lower through the generic port-graph route
        # tabulation, so the express mesh compiles clean.
        assert express["lowering"] == []
        assert express["compiles"] is True

    def test_no_matrix_certifies_only_the_specs(self, capsys):
        code = main(
            ["--certify", "--skip-lint", "--no-matrix",
             "--spec", '{"topology": "mesh3d", "width": 4, '
             '"height": 4, "depth": 2}',
             "--spec", '{"topology": "torus3d", "width": 4, '
             '"height": 4, "depth": 2}']
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 design point(s), 0 failure(s)" in out
        assert "basis=declared-minimal" in out
        assert "monotone-dor" not in out  # no matrix entries ran

    def test_no_matrix_without_spec_is_config_error(self):
        assert main(
            ["--certify", "--skip-lint", "--no-matrix"]
        ) == 2

    def test_missing_plugin_file_is_config_error(self):
        assert main(
            ["--certify", "--skip-lint", "--load", "no/such/file.py"]
        ) == 2

    def test_bad_spec_json_is_config_error(self):
        assert main(
            ["--certify", "--skip-lint", "--spec", "{not json"]
        ) == 2

    def test_spec_missing_key_is_config_error(self):
        assert main(
            ["--certify", "--skip-lint", "--spec", '{"topology": "mesh"}']
        ) == 2


class TestVerifyModeProvenance:
    def test_verify_reports_carry_spec_hash(self, tmp_path):
        target = tmp_path / "verify.json"
        code = main(
            ["--config", "mesh", "--size", "4x4", "--json", str(target),
             "--skip-lint"]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["provenance"]["mode"] == "verify"
        (report,) = payload["reports"]
        assert len(report["spec_hash"]) == 64
