"""CLI tests for ``python -m repro.verify``."""

import json

from repro.verify.__main__ import main


class TestSingleConfig:
    def test_ok_config_exits_zero(self, capsys):
        assert main(["--config", "mesh", "--size", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "mesh" in out and "ok" in out

    def test_json_payload(self, capsys, tmp_path):
        target = tmp_path / "report.json"
        code = main(
            ["--config", "ruche2-depop", "--size", "4x4",
             "--json", str(target)]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["ok"] is True
        assert payload["verified"] == 1
        assert payload["failed"] == 0
        (report,) = payload["reports"]
        assert report["config"] == "ruche2-depop"
        assert report["problems"] == []

    def test_bad_size_is_config_error(self):
        assert main(["--config", "mesh", "--size", "nonsense"]) == 2

    def test_unknown_config_is_config_error(self):
        assert main(["--config", "zorp", "--size", "4x4"]) == 2


class TestMatrixMode:
    def test_small_matrix_all_ok(self, capsys):
        code = main(["--sizes", "4x4", "--rf", "2", "--skip-lint"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out and "FAIL" not in out

    def test_lint_only_mode(self, capsys):
        assert main(["--lint-only"]) == 0
