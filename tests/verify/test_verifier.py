"""Static verifier tests: acceptance of every paper config, rejection of
deliberately broken routing/crossbars with concrete witnesses."""

import pytest

from repro.core.connectivity import connectivity_matrix
from repro.core.coords import Coord, Direction
from repro.core.params import DorOrder, NetworkConfig
from repro.core.routing import MeshDOR, TorusDOR, make_fault_aware_routing
from repro.verify import paper_matrix, verify_config, verify_matrix

ALL_NAMES = (
    "mesh", "torus", "half-torus", "torus-fbfc", "multimesh",
    "ruche1", "ruche2-depop", "ruche2-pop", "ruche3-depop", "ruche3-pop",
)


class TestAcceptsHealthyConfigs:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_8x8_ok(self, name):
        report = verify_config(NetworkConfig.from_name(name, 8, 8))
        assert report.ok, report.problems()
        assert report.pairs_checked == 64 * 64

    @pytest.mark.parametrize("name", ("ruche2-depop", "ruche3-pop"))
    def test_half_ruche_ok(self, name):
        config = NetworkConfig.from_name(name, 8, 8, half=True)
        report = verify_config(config)
        assert report.ok, report.problems()

    def test_yx_mesh_ok(self):
        config = NetworkConfig.from_name(
            "mesh", 8, 8, dor_order=DorOrder.YX
        )
        report = verify_config(config)
        assert report.ok, report.problems()

    def test_rectangular_ok(self):
        report = verify_config(NetworkConfig.from_name("ruche2-depop", 16, 8))
        assert report.ok, report.problems()

    def test_paper_matrix_all_ok_at_8x8(self):
        reports = verify_matrix(paper_matrix(sizes=[(8, 8)]))
        bad = [r for r in reports if not r.ok]
        assert not bad, [(r.config, r.problems()) for r in bad]
        # The matrix spans every routing algorithm the paper evaluates,
        # plus the beyond-2-D pack's fixed design points.
        assert {r.algorithm for r in reports} == {
            "MeshDOR", "TorusDOR", "MultiMeshRouting",
            "RucheOneRouting", "RucheDOR", "FaultAwareTableRouting",
            "Mesh3dDOR", "Torus3dDOR",
        }

    def test_torus_cdg_is_vc_extended(self):
        report = verify_config(NetworkConfig.from_name("torus", 8, 8))
        assert report.cdg_required and report.cdg_acyclic
        # Two VCs double the channel vertices relative to the wormhole case.
        assert report.cdg_vertices > 0 and report.cdg_edges > 0

    def test_fbfc_waives_cdg_with_warning(self):
        report = verify_config(NetworkConfig.from_name("torus-fbfc", 8, 8))
        assert not report.cdg_required
        assert report.ok
        assert any("bubble" in w for w in report.warnings)


class TestMinimalityAudit:
    def test_depopulated_ruche_non_minimal_is_expected(self):
        report = verify_config(NetworkConfig.from_name("ruche3-depop", 12, 12))
        assert report.non_minimal_expected
        assert report.non_minimal_pairs > 0
        assert report.ok, report.problems()

    def test_populated_ruche_is_minimal(self):
        report = verify_config(NetworkConfig.from_name("ruche3-pop", 12, 12))
        assert not report.non_minimal_expected
        assert report.non_minimal_pairs == 0
        assert report.ok, report.problems()


class TestRejectsBrokenCrossbar:
    def test_missing_turn_named_in_report(self):
        config = NetworkConfig.from_name("mesh", 8, 8)
        matrix = dict(connectivity_matrix(config))
        # Remove the W -> N turn: X-Y DOR needs it for every NE-bound pair.
        matrix[Direction.W] = matrix[Direction.W] - {Direction.N}
        report = verify_config(config, matrix=matrix)
        assert not report.ok
        assert any("W -> N" in turn for turn in report.illegal_turns)
        assert any("illegal turn" in p for p in report.problems())


class _NoDateline(TorusDOR):
    """Torus DOR with the dateline VC promotion removed: each ring's
    channel dependencies close into a cycle."""

    def route_vc(self, node, in_dir, in_vc, dest):
        out, _vc = super().route_vc(node, in_dir, in_vc, dest)
        return out, 0


class _PingPong(MeshDOR):
    """Bounces east/west forever between two columns: a routing livelock."""

    def route(self, node, in_dir, dest, subnet=0):
        if node == dest:
            return Direction.P
        return Direction.W if node.x >= 2 else Direction.E


class TestRejectsBrokenRouting:
    def test_dateline_removal_yields_concrete_cycle(self):
        config = NetworkConfig.from_name("torus", 8, 8)
        report = verify_config(config, _NoDateline(config))
        assert not report.cdg_acyclic
        assert not report.ok
        assert report.cycle, "expected a rendered cyclic channel chain"
        assert any("channel dependency cycle" in p for p in report.problems())

    def test_livelock_detected_with_state_cycle(self):
        config = NetworkConfig.from_name("mesh", 8, 8)
        report = verify_config(config, _PingPong(config))
        assert not report.ok
        assert any("state cycle" in entry for entry in report.unreached)


class TestFaultAware:
    def test_healthy_tables_verify(self):
        config = NetworkConfig.from_name("ruche2-depop", 8, 8)
        report = verify_config(config, make_fault_aware_routing(config))
        assert report.cdg_required and report.cdg_acyclic
        assert not report.minimality_checked
        assert report.ok, report.problems()

    def test_faulted_tables_waive_cdg_and_count_partitions(self):
        config = NetworkConfig.from_name("mesh", 4, 4)
        routing = make_fault_aware_routing(
            config, dead_nodes=[Coord(1, 1)]
        )
        report = verify_config(config, routing)
        assert not report.cdg_required
        assert report.ok, report.problems()
        assert any("watchdog" in w for w in report.warnings)


class TestReportShape:
    def test_to_dict_is_json_ready(self):
        import json

        report = verify_config(NetworkConfig.from_name("mesh", 4, 4))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["config"] == "mesh"
        assert payload["problems"] == []

    def test_summary_one_line(self):
        report = verify_config(NetworkConfig.from_name("mesh", 4, 4))
        assert "\n" not in report.summary()
        assert "ok" in report.summary()
