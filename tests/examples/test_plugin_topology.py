"""The out-of-tree express-mesh plugin: registered, verified, simulated.

These tests load ``examples/plugin_topology.py`` by file path (it is not
an installed package — that is the point) and prove the registry's
promise: a topology the core has never seen becomes constructible,
statically verifiable, and simulable with zero core changes.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.core.coords import Direction
from repro.core.registry import TOPOLOGIES
from repro.core.spec import NetworkSpec, build_run, resolve_topology
from repro.core.topology import Topology
from repro.errors import ConfigError
from repro.verify import verify_spec

REPO_ROOT = Path(__file__).resolve().parents[2]
PLUGIN_PATH = REPO_ROOT / "examples" / "plugin_topology.py"


def _load_plugin():
    """Import the example once per process, by file path."""
    name = "plugin_topology_example"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, PLUGIN_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def plugin():
    return _load_plugin()


class TestRegistration:
    def test_registers_through_public_registry(self, plugin):
        assert "express-mesh" in TOPOLOGIES
        provider = resolve_topology("express-mesh")
        assert provider.has_custom_components
        assert provider.topology_factory is plugin.ExpressMeshTopology
        assert provider.routing_factory is plugin.ExpressMeshRouting

    def test_config_factory_validates_span(self, plugin):
        with pytest.raises(ConfigError, match="span"):
            plugin.express_mesh_config("express-mesh", 8, 8, span=1)

    def test_express_channels_only_at_stations(self, plugin):
        config = plugin.express_mesh_config("express-mesh", 16, 8)
        custom = plugin.ExpressMeshTopology(config)
        express = [
            (src, d, dst) for src, d, dst in custom.channels if d.is_ruche
        ]
        assert express, "express channels must exist"
        span = config.ruche_factor
        for src, direction, dst in express:
            assert src.x % span == 0
            assert dst.x % span == 0
            assert direction in (Direction.RE, Direction.RW)
        # Strictly fewer long-range channels than the builtin Half
        # Ruche wiring the same config would get.
        builtin = sum(
            1 for _, d, _ in Topology(config).channels if d.is_ruche
        )
        assert len(express) < builtin


class TestVerification:
    def test_static_verifier_passes(self, plugin):
        report = verify_spec(plugin.demo_spec())
        assert report.ok, report.problems()
        assert report.cdg_acyclic
        assert not report.illegal_turns
        assert not report.unreached
        assert report.pairs_checked == (16 * 8) ** 2

    def test_express_channels_shorten_worst_case_paths(self, plugin):
        report = verify_spec(plugin.demo_spec())
        mesh_diameter = (16 - 1) + (8 - 1)
        assert report.max_hops < mesh_diameter


class TestSimulation:
    def test_simulates_under_build_run(self, plugin):
        spec = NetworkSpec.for_network(
            "express-mesh", 8, 4,
            rate=0.05, warmup=100, measure=200, drain_limit=600, seed=1,
        )
        result = build_run(spec)
        assert result.avg_latency > 0
        assert result.accepted_throughput > 0

    def test_main_smoke_exits_zero(self, plugin, capsys):
        assert plugin.main() == 0
        out = capsys.readouterr().out
        assert "simulated express-mesh" in out


class TestNoCoreChanges:
    def test_core_never_mentions_the_plugin(self):
        """The plugin rides entirely on public extension points."""
        src = REPO_ROOT / "src" / "repro"
        offenders = [
            str(path.relative_to(REPO_ROOT))
            for path in sorted(src.rglob("*.py"))
            if "express-mesh" in path.read_text(encoding="utf-8")
            or "ExpressMesh" in path.read_text(encoding="utf-8")
        ]
        assert offenders == []
